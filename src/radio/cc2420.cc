#include "src/radio/cc2420.h"

#include <utility>

namespace quanto {

Cc2420::Cc2420(Node* node, Medium* medium, const Config& config)
    : node_(node),
      medium_(medium),
      config_(config),
      spi_(&node->queue(), &node->cpu(), config.spi),
      rng_(config.seed ^ node->id()),
      regulator_ps_(kSinkRadioRegulator, kRegulatorOff),
      control_ps_(kSinkRadioControl, kRadioControlOff),
      rx_ps_(kSinkRadioRx, kRadioRxOff),
      tx_ps_(kSinkRadioTx, kRadioTxOff),
      tx_activity_(kSinkRadioTx, MakeActivity(node->id(), kActIdle)),
      rx_activity_(kSinkRadioRx) {
  medium_->Register(this);
}

Cc2420::~Cc2420() { medium_->Unregister(this); }

node_id_t Cc2420::NodeId() const { return node_->id(); }

void Cc2420::PowerOn(Callback ready) {
  if (powered_) {
    if (ready) {
      ready();
    }
    return;
  }
  if (ready) {
    if (power_ready_) {
      // Rare: a second caller while a power-up is in flight; chain both
      // continuations in arrival order.
      power_ready_ = [first = std::move(power_ready_),
                      second = std::move(ready)] {
        first();
        second();
      };
    } else {
      power_ready_ = std::move(ready);
    }
  }
  if (powering_up_) {
    return;
  }
  powering_up_ = true;
  regulator_ps_.set(kRegulatorOn);
  powerup_event_ = node_->queue().ScheduleAfter(
      config_.regulator_startup + config_.oscillator_startup,
      [this] { FinishPowerUp(); });
}

void Cc2420::FinishPowerUp() {
  if (!powering_up_) {
    return;  // PowerOff() won the race with the startup delay.
  }
  powerup_event_ = EventQueue::kInvalidEvent;
  powering_up_ = false;
  powered_ = true;
  control_ps_.set(kRadioControlIdle);
  Callback ready = std::move(power_ready_);
  power_ready_ = nullptr;
  if (ready) {
    ready();
  }
}

void Cc2420::PowerOff() {
  StopListening();
  powered_ = false;
  // Abort an in-flight power-up. Cancelling the startup event matters
  // beyond tidiness: a later PowerOn sets powering_up_ again, and a stale
  // event still in the queue would then complete that power-up at the
  // *old* deadline — earlier than the modeled startup time.
  node_->queue().Cancel(powerup_event_);
  powerup_event_ = EventQueue::kInvalidEvent;
  powering_up_ = false;
  power_ready_ = nullptr;
  control_ps_.set(kRadioControlOff);
  regulator_ps_.set(kRegulatorOff);
}

void Cc2420::StartListening() {
  if (!powered_ || listening_) {
    return;
  }
  listening_ = true;
  listen_since_ = node_->queue().Now();
  rx_ps_.set(kRadioRxListen);
}

void Cc2420::StopListening() {
  if (!listening_) {
    return;
  }
  listening_ = false;
  listen_accum_ += node_->queue().Now() - listen_since_;
  rx_ps_.set(kRadioRxOff);
}

Tick Cc2420::ListenTime() const {
  Tick total = listen_accum_;
  if (listening_) {
    total += node_->queue().Now() - listen_since_;
  }
  return total;
}

bool Cc2420::SampleCca() const {
  return medium_->EnergyDetected(config_.channel);
}

void Cc2420::Send(const Packet& packet, SendDone done) {
  if (!powered_ || sending_) {
    ++send_failures_;
    if (done) {
      done(false);
    }
    return;
  }
  sending_ = true;
  outgoing_ = packet;
  send_done_ = std::move(done);
  // Figure 8 (loadTXFIFO): paint the radio with the CPU's activity, then
  // stream the frame into the TXFIFO over the SPI bus.
  tx_owner_ = node_->cpu().activity().get();
  tx_activity_.set(tx_owner_);
  spi_.Transfer(outgoing_.FifoBytes(), kActIntUart0Rx, tx_owner_,
                [this] { AttemptTransmit(config_.max_congestion_retries); });
}

void Cc2420::AttemptTransmit(int retries_left) {
  // CSMA: wait a random initial backoff, then check the channel.
  Tick backoff = config_.backoff_period * rng_.UniformInt(1, 32);
  node_->queue().ScheduleAfter(backoff, [this, retries_left] {
    if (medium_->EnergyDetected(config_.channel)) {
      if (retries_left <= 0) {
        // Channel never cleared: give up, as the real MAC eventually does.
        sending_ = false;
        tx_activity_.set(MakeActivity(node_->id(), kActIdle));
        ++send_failures_;
        if (send_done_) {
          auto done = std::move(send_done_);
          node_->cpu().PostTaskWithActivity(tx_owner_,
                                            config_.senddone_task_cost,
                                            [done] { done(false); });
        }
        return;
      }
      AttemptTransmit(retries_left - 1);
      return;
    }
    Tick airtime = config_.byte_airtime * outgoing_.WireBytes();
    tx_ps_.set(config_.tx_power);
    medium_->BeginTransmit(node_->id(), config_.channel, outgoing_, airtime);
    node_->queue().ScheduleAfter(airtime, [this] { FinishTransmit(); });
  });
}

void Cc2420::FinishTransmit() {
  tx_ps_.set(kRadioTxOff);
  ++frames_sent_;
  // Transmit-complete interrupt: the driver stored the owning activity when
  // the send began; the proxy binds to it and sendDone is posted under it.
  node_->cpu().RaiseInterrupt(
      kActIntSfd, config_.txdone_irq_cost, [this] {
        node_->cpu().activity().bind(tx_owner_);
        act_t owner = tx_owner_;
        auto done = std::move(send_done_);
        send_done_ = nullptr;
        sending_ = false;
        tx_activity_.set(MakeActivity(node_->id(), kActIdle));
        node_->cpu().PostTaskWithActivity(
            owner, config_.senddone_task_cost, [done] {
              if (done) {
                done(true);
              }
            });
      });
}

void Cc2420::OnFrameStart(node_id_t sender) {
  (void)sender;
  if (!listening_) {
    return;
  }
  // Start-of-frame delimiter: a timer-capture interrupt under the receive
  // proxy; the radio's receive path is painted with pxy_RX for the
  // duration of the reception (Figure 12(b)).
  rx_activity_.add(MakeActivity(node_->id(), kActProxyRx));
  node_->cpu().RaiseInterrupt(kActIntSfd, config_.sfd_irq_cost, nullptr);
}

void Cc2420::OnFrameComplete(const Packet& packet) {
  if (!listening_) {
    rx_activity_.remove(MakeActivity(node_->id(), kActProxyRx));
    return;
  }
  // Hardware address filtering.
  if (packet.dst != kBroadcastAddr && packet.dst != node_->id()) {
    rx_activity_.remove(MakeActivity(node_->id(), kActProxyRx));
    return;
  }
  // Download the frame from the RXFIFO over the SPI bus; the real activity
  // is unknown until decode, so the transfer stays under pxy_RX unbound.
  spi_.Transfer(
      packet.FifoBytes(), kActProxyRx, SpiBus::kUnbound, [this, packet] {
        act_t proxy = MakeActivity(node_->id(), kActProxyRx);
        node_->cpu().PostTaskWithActivity(
            proxy, config_.decode_task_cost, [this, packet] {
              rx_activity_.remove(MakeActivity(node_->id(), kActProxyRx));
              ++frames_received_;
              if (receive_cb_) {
                receive_cb_(packet);
              }
            });
      });
}

}  // namespace quanto
