// Low-power listening (Polastre et al.'s B-MAC family, as studied in the
// paper's first case study, Section 4.3).
//
// "The receiver stays mostly off, and periodically wakes up to detect
// whether there is activity on the channel. If there is, it stays on to
// receive packets, otherwise it goes back to sleep. ... A higher level of
// energy in the channel, due to interference from other sources, can cause
// the receiver to falsely detect activity, and stay on unnecessarily."
//
// The wake-up machinery runs inside the timer subsystem (Figure 14 shows
// the VTimer activity scheduling wake-ups); a detection paints the radio's
// receive path with the pxy_RX proxy, which — on a false positive — never
// binds to any higher-level activity, exactly the unbound proxy the paper's
// Figure 14 calls out.
#ifndef QUANTO_SRC_RADIO_LPL_H_
#define QUANTO_SRC_RADIO_LPL_H_

#include <cstdint>

#include "src/radio/cc2420.h"
#include "src/sim/node.h"
#include "src/util/units.h"

namespace quanto {

class LowPowerListening {
 public:
  struct Config {
    // Channel check period (the experiment samples every 500 ms).
    Tick check_interval = Milliseconds(500);
    // Listen window before the CCA decision (radio settling + RSSI
    // integration); with the radio start-up time this sets the "normal
    // wake-up" on-time and hence the baseline duty cycle.
    Tick cca_listen_time = Milliseconds(9);
    // How long a detection keeps the radio on waiting for a frame
    // (Figure 14: "the CPU keeps the radio on for about 100 ms").
    Tick detection_timeout = Milliseconds(100);
    Cycles wakeup_task_cost = 60;
    Cycles decision_task_cost = 40;
  };

  LowPowerListening(Node* node, Cc2420* radio);
  LowPowerListening(Node* node, Cc2420* radio, const Config& config);

  // Begins duty cycling. The radio must be off; LPL powers it per check.
  void Start();
  void Stop();

  // A received frame during a detection window marks the wake-up as a true
  // positive; the radio stays on until the timeout regardless (the MAC
  // cannot know more frames are not coming).
  void NotifyFrameReceived() { frame_in_window_ = true; }

  uint64_t wakeups() const { return wakeups_; }
  uint64_t detections() const { return detections_; }
  uint64_t false_positives() const { return false_positives_; }
  double FalsePositiveRate() const;

  // Receive-path duty cycle so far (listen time / elapsed time).
  double DutyCycle() const;

  const Config& config() const { return config_; }

 private:
  void ScheduleNextCheck();
  void WakeUp();
  void Decide();
  void WindowExpired();
  void SleepRadio();

  Node* node_;
  Cc2420* radio_;
  Config config_;
  bool running_ = false;
  bool frame_in_window_ = false;
  Tick started_at_ = 0;
  VirtualTimers::TimerId timer_ = VirtualTimers::kInvalidTimer;

  uint64_t wakeups_ = 0;
  uint64_t detections_ = 0;
  uint64_t false_positives_ = 0;
};

}  // namespace quanto

#endif  // QUANTO_SRC_RADIO_LPL_H_
