#include "src/radio/active_message.h"

#include <utility>

namespace quanto {

ActiveMessageLayer::ActiveMessageLayer(Node* node, Cc2420* radio)
    : ActiveMessageLayer(node, radio, Config()) {}

ActiveMessageLayer::ActiveMessageLayer(Node* node, Cc2420* radio,
                                       const Config& config)
    : node_(node), radio_(radio), config_(config) {
  radio_->SetReceiveCallback(
      [this](const Packet& packet) { OnRadioReceive(packet); });
}

void ActiveMessageLayer::RegisterHandler(uint8_t am_type, Handler handler) {
  handlers_[am_type] = std::move(handler);
}

bool ActiveMessageLayer::Send(Packet packet, SendDone done) {
  if (queue_.size() >= config_.send_queue_capacity) {
    ++dropped_full_queue_;
    return false;
  }
  node_->cpu().ChargeCycles(config_.submit_cost);
  QueueEntry entry;
  entry.packet = std::move(packet);
  entry.packet.src = node_->id();
  // The hidden field: stamp the submitting activity.
  act_t current = node_->cpu().activity().get();
  entry.packet.activity = current;
  entry.saved_activity = current;
  entry.done = std::move(done);
  queue_.push_back(std::move(entry));
  PumpQueue();
  return true;
}

void ActiveMessageLayer::PumpQueue() {
  if (pumping_ || queue_.empty() || radio_->sending()) {
    return;
  }
  pumping_ = true;
  QueueEntry entry = std::move(queue_.front());
  queue_.pop_front();
  // The forwarding queue is a control-flow deferral point: restore the
  // saved label before handing the packet to the radio driver, so the
  // TXFIFO load is painted correctly however late the dequeue happens.
  node_->cpu().PostTaskWithActivity(
      entry.saved_activity, 20,
      [this, entry = std::move(entry)]() mutable {
        radio_->Send(entry.packet,
                     [this, done = std::move(entry.done)](bool ok) {
                       ++sent_;
                       pumping_ = false;
                       if (done) {
                         done(ok);
                       }
                       PumpQueue();
                     });
      });
}

void ActiveMessageLayer::OnRadioReceive(const Packet& packet) {
  ++received_;
  // Decode runs under pxy_RX (the radio posted us there). Terminate the
  // proxy by binding it to the activity carried in the packet; from here
  // on this node works on behalf of the originating node's activity.
  node_->cpu().activity().bind(packet.activity);
  if (promiscuous_) {
    promiscuous_(packet);
  }
  auto it = handlers_.find(packet.am_type);
  if (it != handlers_.end() && it->second) {
    it->second(packet);
  }
}

}  // namespace quanto
