// The MCU<->radio serial bus, with the two transfer disciplines whose
// timing Figure 16 contrasts: interrupt-driven (the UART0 receive interrupt
// fires for every 2 bytes moved) versus a DMA channel (one setup, a block
// transfer the CPU does not touch, one completion interrupt).
//
// "From the figure it is apparent that the DMA transfer is at least twice
// as fast as the interrupt-driven transfer" — here the per-byte times make
// that explicit: per-byte interrupt servicing dominates the interrupt-driven
// path at a 1 MHz CPU.
#ifndef QUANTO_SRC_RADIO_SPI_H_
#define QUANTO_SRC_RADIO_SPI_H_

#include <cstddef>
#include <deque>

#include "src/core/activity.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/util/units.h"

namespace quanto {

class SpiBus {
 public:
  enum class Mode {
    kInterrupt,
    kDma,
  };

  struct Config {
    Mode mode = Mode::kInterrupt;
    // Effective per-byte time including interrupt servicing overhead.
    Tick byte_time_interrupt = Microseconds(100);
    // Per-byte time of the DMA block transfer (bus speed only).
    Tick byte_time_dma = Microseconds(40);
    Cycles irq_cost = 26;        // Per 2-byte UART0RX handler.
    Cycles dma_setup_cost = 60;  // Program the DMA controller.
    Cycles dma_irq_cost = 30;    // DACDMA completion handler.
  };

  SpiBus(EventQueue* queue, CpuScheduler* cpu, const Config& config);

  // Moves `bytes` over the bus. Interrupt chunks run under the proxy
  // activity `irq_proxy`. When the transfer completes, the final handler
  // binds its proxy to `owner` (skipped when owner is kUnbound — e.g. a
  // receive path whose real activity is not yet known) and then invokes
  // `done` in interrupt context.
  //
  // One physical bus: a transfer requested while another is in progress
  // waits its turn (FIFO), exactly as back-to-back RXFIFO downloads or a
  // TXFIFO load contending with a reception must on real hardware.
  static constexpr act_t kUnbound = 0;
  void Transfer(size_t bytes, act_id_t irq_proxy, act_t owner, Callback done);

  // Wall-clock duration a transfer of `bytes` will take in this mode.
  Tick TransferDuration(size_t bytes) const;

  bool busy() const { return busy_; }
  size_t queued() const { return pending_.size(); }
  Mode mode() const { return config_.mode; }
  uint64_t transfers() const { return transfers_; }
  uint64_t irqs_raised() const { return irqs_raised_; }

 private:
  struct Pending {
    size_t bytes;
    act_id_t irq_proxy;
    act_t owner;
    Callback done;
  };

  void Begin(Pending request);
  void Complete();
  void ScheduleChunk();
  void OnChunkDone();

  EventQueue* queue_;
  CpuScheduler* cpu_;
  Config config_;
  bool busy_ = false;
  // In-flight transfer state. One physical bus means at most one active
  // transfer, so the per-chunk continuation is a bare [this] closure and
  // the chunk path never allocates.
  Pending active_;
  std::deque<Pending> pending_;
  uint64_t transfers_ = 0;
  uint64_t irqs_raised_ = 0;
};

}  // namespace quanto

#endif  // QUANTO_SRC_RADIO_SPI_H_
