// The TinyOS Arbiter abstraction (Klues et al., SOSP'07), instrumented as
// Section 3.3 describes: the arbiter "automatically transfers activity
// labels to and from the managed device". A client requests the shared
// resource; when granted (immediately or after the current holder releases),
// the managed device is painted with the activity that was current when the
// client requested, and the client's granted callback is posted as a task
// under that same label.
#ifndef QUANTO_SRC_SIM_ARBITER_H_
#define QUANTO_SRC_SIM_ARBITER_H_

#include <deque>

#include "src/core/activity.h"
#include "src/core/activity_device.h"
#include "src/sim/cpu.h"

namespace quanto {

class Arbiter {
 public:
  // `device` is the activity device of the managed hardware resource; the
  // arbiter paints it on grant and repaints it (to idle) on final release.
  Arbiter(CpuScheduler* cpu, SingleActivityDevice* device);

  // Requests the resource. `granted` is posted as a task (cost
  // `grant_cost`) when the resource becomes available; requests are served
  // in FCFS order. Returns immediately.
  void Request(Cycles grant_cost, Callback granted);

  // Releases the resource held by the current owner, granting the next
  // queued request if any.
  void Release();

  bool busy() const { return busy_; }
  size_t queue_length() const { return waiters_.size(); }
  act_t owner_activity() const { return owner_activity_; }

 private:
  struct Waiter {
    act_t activity;
    Cycles grant_cost;
    Callback granted;
  };

  void Grant(Waiter waiter);

  CpuScheduler* cpu_;
  SingleActivityDevice* device_;
  bool busy_ = false;
  act_t owner_activity_;
  std::deque<Waiter> waiters_;
};

}  // namespace quanto

#endif  // QUANTO_SRC_SIM_ARBITER_H_
