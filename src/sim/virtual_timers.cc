#include "src/sim/virtual_timers.h"

#include <utility>
#include <vector>

namespace quanto {

VirtualTimers::VirtualTimers(EventQueue* queue, CpuScheduler* cpu,
                             const Config& config)
    : queue_(queue),
      cpu_(cpu),
      config_(config),
      hw_device_(config.hw_timer_resource) {}

VirtualTimers::TimerId VirtualTimers::StartPeriodic(Tick interval,
                                                    Cycles callback_cost,
                                                    Callback callback) {
  return Start(interval, interval, callback_cost, std::move(callback));
}

VirtualTimers::TimerId VirtualTimers::StartOneShot(Tick delay,
                                                   Cycles callback_cost,
                                                   Callback callback) {
  return Start(delay, 0, callback_cost, std::move(callback));
}

VirtualTimers::Timer* VirtualTimers::Find(TimerId id) {
  for (Timer& timer : timers_) {
    if (timer.id == id) {
      return &timer;
    }
  }
  return nullptr;
}

VirtualTimers::TimerId VirtualTimers::Start(Tick delay, Tick interval,
                                            Cycles callback_cost,
                                            Callback callback) {
  TimerId id = next_id_++;
  Timer* slot = Find(kInvalidTimer);  // Reuse a free slot if any.
  if (slot == nullptr) {
    timers_.emplace_back();
    slot = &timers_.back();
  }
  slot->id = id;
  slot->deadline = queue_->Now() + delay;
  slot->interval = interval;
  slot->callback_cost = callback_cost;
  // Save the activity of the code arming the timer; the callback will run
  // under it.
  slot->saved_activity = cpu_->activity().get();
  slot->callback = std::move(callback);
  ++armed_;
  hw_device_.add(slot->saved_activity);
  UpdateCompare();
  return id;
}

void VirtualTimers::Stop(TimerId id) {
  Timer* timer = Find(id);
  if (timer == nullptr || id == kInvalidTimer) {
    return;
  }
  hw_device_.remove(timer->saved_activity);
  timer->id = kInvalidTimer;
  timer->callback = nullptr;
  --armed_;
  UpdateCompare();
}

void VirtualTimers::UpdateCompare() {
  Tick earliest = 0;
  bool have = false;
  for (const Timer& timer : timers_) {
    if (timer.id != kInvalidTimer && (!have || timer.deadline < earliest)) {
      earliest = timer.deadline;
      have = true;
    }
  }
  if (!have) {
    if (compare_event_ != EventQueue::kInvalidEvent) {
      queue_->Cancel(compare_event_);
      compare_event_ = EventQueue::kInvalidEvent;
    }
    return;
  }
  if (compare_event_ != EventQueue::kInvalidEvent) {
    if (compare_deadline_ == earliest) {
      return;
    }
    queue_->Cancel(compare_event_);
  }
  compare_deadline_ = earliest;
  compare_event_ =
      queue_->Schedule(earliest, [this] { OnCompareInterrupt(); });
}

void VirtualTimers::OnCompareInterrupt() {
  compare_event_ = EventQueue::kInvalidEvent;
  // The hardware compare raises int_TIMER; its handler posts the VTimer
  // task, which runs under the VTimer system activity.
  cpu_->RaiseInterrupt(config_.irq_proxy, config_.irq_cost, [this] {
    cpu_->PostTaskWithActivity(cpu_->Label(kActVTimer),
                               config_.vtimer_fire_cost,
                               [this] { VTimerTask(); });
  });
}

void VirtualTimers::VTimerTask() {
  Tick now = queue_->Now();
  // Collect expired timers first: firing callbacks may restart or stop
  // timers and must not invalidate the iteration. The scratch vector is a
  // member so steady-state dispatch does not allocate.
  expired_scratch_.clear();
  for (const Timer& timer : timers_) {
    if (timer.id != kInvalidTimer && timer.deadline <= now) {
      expired_scratch_.push_back(timer.id);
    }
  }
  for (TimerId id : expired_scratch_) {
    Timer* timer = Find(id);
    if (timer == nullptr) {
      continue;
    }
    ++fires_;
    // The timer carries and restores the saved activity (Section 4.2.2:
    // "the timer carries and restores the activity").
    cpu_->PostTaskWithActivity(timer->saved_activity, timer->callback_cost,
                               timer->callback);
    if (timer->interval > 0) {
      timer->deadline += timer->interval;
    } else {
      hw_device_.remove(timer->saved_activity);
      timer->id = kInvalidTimer;
      timer->callback = nullptr;
      --armed_;
    }
  }
  // Trailing bookkeeping under the VTimer activity (the second VTimer block
  // in Figure 11(b)): recompute the hardware compare deadline.
  cpu_->PostTaskWithActivity(cpu_->Label(kActVTimer),
                             config_.vtimer_bookkeeping_cost,
                             [this] { UpdateCompare(); });
}

PeriodicInterrupt::PeriodicInterrupt(EventQueue* queue, CpuScheduler* cpu,
                                     act_id_t proxy_id, Tick period,
                                     Cycles handler_cost)
    : queue_(queue),
      cpu_(cpu),
      proxy_id_(proxy_id),
      period_(period),
      handler_cost_(handler_cost) {}

PeriodicInterrupt::~PeriodicInterrupt() { Stop(); }

void PeriodicInterrupt::Start() {
  if (event_ != EventQueue::kInvalidEvent) {
    return;
  }
  event_ = queue_->ScheduleAfter(period_, [this] { Fire(); });
}

void PeriodicInterrupt::Stop() {
  if (event_ != EventQueue::kInvalidEvent) {
    queue_->Cancel(event_);
    event_ = EventQueue::kInvalidEvent;
  }
}

void PeriodicInterrupt::Fire() {
  ++fires_;
  cpu_->RaiseInterrupt(proxy_id_, handler_cost_, nullptr);
  event_ = queue_->ScheduleAfter(period_, [this] { Fire(); });
}

}  // namespace quanto
