#include "src/sim/arbiter.h"

#include <utility>

namespace quanto {

Arbiter::Arbiter(CpuScheduler* cpu, SingleActivityDevice* device)
    : cpu_(cpu),
      device_(device),
      owner_activity_(MakeActivity(cpu->node_id(), kActIdle)) {}

void Arbiter::Request(Cycles grant_cost, Callback granted) {
  Waiter waiter;
  // Capture the requester's activity now; the grant may happen much later,
  // under an unrelated CPU activity.
  waiter.activity = cpu_->activity().get();
  waiter.grant_cost = grant_cost;
  waiter.granted = std::move(granted);
  if (busy_) {
    waiters_.push_back(std::move(waiter));
    return;
  }
  Grant(std::move(waiter));
}

void Arbiter::Grant(Waiter waiter) {
  busy_ = true;
  owner_activity_ = waiter.activity;
  // Transfer the label to the managed device.
  device_->set(waiter.activity);
  cpu_->PostTaskWithActivity(waiter.activity, waiter.grant_cost,
                             std::move(waiter.granted));
}

void Arbiter::Release() {
  if (!busy_) {
    return;
  }
  if (!waiters_.empty()) {
    Waiter next = std::move(waiters_.front());
    waiters_.pop_front();
    Grant(std::move(next));
    return;
  }
  busy_ = false;
  owner_activity_ = MakeActivity(cpu_->node_id(), kActIdle);
  device_->set(owner_activity_);
}

}  // namespace quanto
