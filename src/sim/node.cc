#include "src/sim/node.h"

namespace quanto {

Node::Node(EventQueue* queue, const Config& config)
    : queue_(queue), config_(config), clock_(queue) {
  Config fixed = config_;
  fixed.cpu.node_id = fixed.id;
  config_ = fixed;
  cpu_ = MakeArenaPtr<CpuScheduler>(config_.arena, queue_, config_.cpu);
  timers_ = MakeArenaPtr<VirtualTimers>(config_.arena, queue_, cpu_.get(),
                                        config_.timers);
}

}  // namespace quanto
