// Sharded parallel simulation core: N per-shard event engines advanced in
// lockstep windows by a pool of worker threads.
//
// Conservative parallel discrete-event simulation: each shard owns a
// disjoint set of motes and a private EventQueue (timing wheel, far heap,
// slab — see event_queue.h), so everything a mote does to itself and to
// shard-mates is ordinary sequential simulation. Shards only interact
// through cross-shard effects (radio frames) whose minimum latency — the
// lookahead — is at least one window width. That makes every window
// embarrassingly parallel: during the window (t, t+W] no shard can affect
// another, so all shards run concurrently with no locks on the hot path,
// and cross-shard effects are exchanged at the window barrier (see
// MediumFabric in src/net/medium.h).
//
// Determinism is by construction, not by luck:
//  * The shard decomposition is fixed by configuration, independent of the
//    worker-thread count. Threads only decide *who* executes a shard's
//    window, never *what* executes: a 1-thread run and an 8-thread run
//    perform the identical per-shard event sequences.
//  * Inter-window work is phase-ordered, not thread-ordered. After every
//    shard parks at the barrier, an optional parallel drain phase runs
//    once per shard (destination-owned work such as the fabric's mailbox
//    merge — see AddShardDrainTask), then the serial barrier hooks
//    (O(shards) hand-off bookkeeping) run on the coordinating thread in
//    registration order. Each drain task writes only its own
//    shard's engine and applies inputs in a deterministic merge order,
//    so the events it schedules get identical sequence numbers at any
//    thread count — the same argument as for the hooks themselves.
//  * Each queue's same-tick FIFO ordering is untouched; merged per-node
//    logs are therefore bit-identical across thread counts (asserted by
//    tests/sharded_determinism_test.cc).
//
// Windows fast-forward across globally idle gaps: if every shard's next
// event is at time B > now, the window is placed to end at B-1+W instead
// of grinding through empty barriers (duty-cycled networks sleep orders of
// magnitude longer than a window).
#ifndef QUANTO_SRC_SIM_SHARDED_SIM_H_
#define QUANTO_SRC_SIM_SHARDED_SIM_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/units.h"

namespace quanto {

class ShardedSimulator {
 public:
  struct Config {
    // Shard count fixes the decomposition (and thus the exact simulated
    // behaviour); it deliberately does NOT default to the thread count.
    size_t shards = 8;
    // Worker threads executing shard windows; clamped to [1, shards]. The
    // coordinating thread is one of them.
    size_t threads = 1;
    // Window width in ticks. Must be <= the minimum cross-shard latency
    // (the MediumFabric enforces its side; see medium.h). 512 us default:
    // one CC2420 CSMA backoff period (320 us) + RX turnaround (192 us),
    // the shortest path from a transmit decision to another node hearing
    // the frame.
    Tick lookahead = Microseconds(512);
  };

  explicit ShardedSimulator(const Config& config);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  size_t shard_count() const { return queues_.size(); }
  size_t thread_count() const { return threads_; }
  Tick lookahead() const { return config_.lookahead; }
  Tick Now() const { return now_; }

  // The shard's private engine. Build each mote against the queue of the
  // shard it is assigned to; never schedule onto another shard's queue
  // except from a barrier hook.
  EventQueue& queue(size_t shard) { return *queues_[shard]; }

  // Runs after every window, on the coordinating thread, in registration
  // order, with all shards parked at `window_end`. This is the serial
  // residue of the window — O(shards) hand-off work only (the fabric's
  // retirement swap, the sealed-run hand-off): the per-mote work that
  // once lived here has moved to the parallel phases (mailbox drain to
  // ShardDrainTasks, dirty-logger sealing and the batched charge flush
  // to the fused pre-barrier ShardWindowTask).
  using BarrierHook = std::function<void(Tick window_end)>;
  void AddBarrierHook(BarrierHook hook) {
    hooks_.push_back(std::move(hook));
  }

  // Pre-barrier parallel phase: runs once per shard per window, on the
  // worker thread that just advanced that shard to `window_end`, before
  // the coordinator's BarrierHooks resume. This is where per-shard barrier
  // work that used to serialize on the coordinator — sealing dirty
  // loggers into pre-merged runs, fused with the batched charge flush —
  // overlaps across shards, and with other shards still executing their
  // windows. Tasks must touch only shard-local state (the charge flush
  // qualifies: it only ever reschedules events in the owning shard's own
  // queue, at ticks beyond `window_end`); the window barrier publishes
  // their writes to the coordinator.
  using ShardWindowTask = std::function<void(size_t shard, Tick window_end)>;
  void AddShardWindowTask(ShardWindowTask task) {
    shard_tasks_.push_back(std::move(task));
  }

  // Inter-window parallel phase — the fan-in counterpart to the
  // pre-barrier ShardWindowTask above. Runs once per shard per window,
  // in parallel on the worker pool, after EVERY shard has parked at
  // `window_end` (a full barrier separates it from window execution) and
  // before the coordinator's serial BarrierHooks. This is where
  // per-destination barrier work lands: each shard consumes the inputs
  // the other shards published during the window (cross-shard mailbox
  // lanes) and applies them to its own engine. Tasks may READ any state
  // the window barrier published (it is frozen until the hooks run) but
  // must WRITE only state owned by their `shard` — its EventQueue, its
  // slot in per-shard arrays — which keeps the phase data-race-free by
  // construction. The phase barrier publishes task writes to the hooks.
  using ShardDrainTask = std::function<void(size_t shard, Tick window_end)>;
  void AddShardDrainTask(ShardDrainTask task) {
    drain_tasks_.push_back(std::move(task));
  }

  // Barrier profiling: when enabled, records per window, in microseconds,
  // three separate series — the coordinator's serial barrier section (the
  // BarrierHook loop), the parallel inter-window drain phase's wall time
  // (empty when no ShardDrainTask is registered), and the whole window's
  // wall time (placement + parallel shard execution + drain phase +
  // barrier). Keeping drain_phase_us out of barrier_us is what makes the
  // parallel fabric drain measurable: before the split the drain hid
  // inside the serial-hook aggregate. window_wall minus (drain + barrier)
  // is the window-execution parallel section. Off by default — the
  // samples vectors grow by 8 bytes per window.
  void EnableBarrierProfiling(bool on) { profile_barriers_ = on; }
  const std::vector<uint32_t>& barrier_us_samples() const {
    return barrier_us_samples_;
  }
  const std::vector<uint32_t>& drain_phase_us_samples() const {
    return drain_phase_us_samples_;
  }
  const std::vector<uint32_t>& window_us_samples() const {
    return window_us_samples_;
  }

  // Advances every shard to `end` in lockstep windows. Returns the number
  // of events executed across all shards during this call.
  uint64_t RunUntil(Tick end);
  uint64_t RunFor(Tick duration) { return RunUntil(now_ + duration); }

  // Total events executed across all shards since construction.
  uint64_t executed_count() const;

  uint64_t windows_run() const { return windows_run_; }

 private:
  // The two parallel phases a worker can be dispatched into: window
  // execution (RunShardRange) or the inter-window drain (RunDrainRange).
  enum class Phase : uint8_t { kWindow, kDrain };

  // Runs worker `w`'s static shard range [w*S/T, (w+1)*S/T) up to target.
  void RunShardRange(size_t worker, Tick target);
  // Runs the registered ShardDrainTasks for worker `w`'s shard range.
  void RunDrainRange(size_t worker, Tick target);
  // Publishes (phase, target) to the worker pool, runs the coordinator's
  // own range, and waits for the pool — one full parallel phase.
  void DispatchPhase(Phase phase, Tick target);
  void WorkerLoop(size_t worker);

  Config config_;
  size_t threads_ = 1;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<BarrierHook> hooks_;
  std::vector<ShardWindowTask> shard_tasks_;
  std::vector<ShardDrainTask> drain_tasks_;
  Tick now_ = 0;
  uint64_t windows_run_ = 0;
  bool profile_barriers_ = false;
  std::vector<uint32_t> barrier_us_samples_;
  std::vector<uint32_t> drain_phase_us_samples_;
  std::vector<uint32_t> window_us_samples_;

  // Phase dispatch: the coordinator publishes (epoch_, phase_, target_)
  // under mu_, workers run their ranges, the last one signals cv_done_.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t epoch_ = 0;
  Phase phase_ = Phase::kWindow;
  Tick target_ = 0;
  size_t running_ = 0;
  bool shutdown_ = false;
};

}  // namespace quanto

#endif  // QUANTO_SRC_SIM_SHARDED_SIM_H_
