#include "src/sim/event_queue.h"

#include <utility>

namespace quanto {

EventQueue::EventId EventQueue::Schedule(Tick time, std::function<void()> fn) {
  if (time < now_) {
    time = now_;
  }
  EventId id = next_id_++;
  heap_.push(Item{time, id, std::move(fn)});
  live_.insert(id);
  return id;
}

EventQueue::EventId EventQueue::ScheduleAfter(Tick delay,
                                              std::function<void()> fn) {
  return Schedule(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  if (live_.erase(id) == 0) {
    return false;  // Never issued, already run, or already cancelled.
  }
  cancelled_.insert(id);
  return true;
}

bool EventQueue::PopNext(Item* out) {
  while (!heap_.empty()) {
    Item item = heap_.top();
    heap_.pop();
    auto it = cancelled_.find(item.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(item.id);
    *out = std::move(item);
    return true;
  }
  return false;
}

bool EventQueue::RunNext() {
  Item item;
  if (!PopNext(&item)) {
    return false;
  }
  now_ = item.time;
  ++executed_count_;
  item.fn();
  return true;
}

size_t EventQueue::RunUntil(Tick end) {
  size_t executed = 0;
  while (!heap_.empty()) {
    const Item& top = heap_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.time > end) {
      break;
    }
    Item item = heap_.top();
    heap_.pop();
    live_.erase(item.id);
    now_ = item.time;
    ++executed_count_;
    ++executed;
    item.fn();
  }
  now_ = end;
  return executed;
}

size_t EventQueue::RunAll() {
  size_t executed = 0;
  while (RunNext()) {
    ++executed;
  }
  return executed;
}

}  // namespace quanto
