#include "src/sim/event_queue.h"

#include <limits>
#include <utility>

namespace quanto {

uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  // Invalidate every id issued for this occupancy before the slot can be
  // reused.
  ++slot.generation;
  slot.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::FarPush(const HeapEntry& entry) {
  far_keys_.push_back(entry.time);
  far_payloads_.push_back({entry.seq, entry.slot, entry.generation});
  size_t child = far_keys_.size() - 1;
  while (child > 0) {
    size_t parent = (child - 1) / 4;
    if (!FarEarlier(child, parent)) {
      break;
    }
    std::swap(far_keys_[child], far_keys_[parent]);
    std::swap(far_payloads_[child], far_payloads_[parent]);
    child = parent;
  }
}

void EventQueue::FarPopTop() {
  far_keys_.front() = far_keys_.back();
  far_keys_.pop_back();
  far_payloads_.front() = far_payloads_.back();
  far_payloads_.pop_back();
  size_t n = far_keys_.size();
  size_t parent = 0;
  for (;;) {
    size_t first_child = parent * 4 + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (FarEarlier(c, best)) {
        best = c;
      }
    }
    if (!FarEarlier(best, parent)) {
      break;
    }
    std::swap(far_keys_[parent], far_keys_[best]);
    std::swap(far_payloads_[parent], far_payloads_[best]);
    parent = best;
  }
}

void EventQueue::WheelInsert(const HeapEntry& entry) {
  size_t index = static_cast<size_t>(entry.time & kWheelMask);
  Bucket& bucket = wheel_[index];
  if (bucket.empty()) {
    // Bucket fully consumed by a previous tick: recycle its storage.
    bucket.entries.clear();
    bucket.taken = 0;
    MarkBucket(index);
  }
  bucket.entries.push_back(entry);
}

int EventQueue::NextOccupiedBucket(Tick from) const {
  if (from >= horizon_) {
    return -1;
  }
  // Every occupied bucket holds a tick inside [from, horizon_): ticks
  // before `from` are fully consumed and the window is at most
  // kNearHorizon wide, so the first set bit in ring order from `from` is
  // the next occupied bucket.
  size_t start = static_cast<size_t>(from & kWheelMask);
  size_t word = start / 64;
  uint64_t w = occupied_[word] & (~uint64_t{0} << (start % 64));
  if (w != 0) {
    return static_cast<int>(word * 64 +
                            static_cast<size_t>(__builtin_ctzll(w)));
  }
  for (size_t step = 1; step < kBitmapWords; ++step) {
    size_t i = (word + step) % kBitmapWords;
    if (occupied_[i] != 0) {
      return static_cast<int>(
          i * 64 + static_cast<size_t>(__builtin_ctzll(occupied_[i])));
    }
  }
  // Wrapped back to the first word: bits below `start`.
  uint64_t low = occupied_[word] & ~(~uint64_t{0} << (start % 64));
  if (low != 0) {
    return static_cast<int>(word * 64 +
                            static_cast<size_t>(__builtin_ctzll(low)));
  }
  return -1;
}

EventQueue::EventId EventQueue::Schedule(Tick time, Callback fn) {
  if (time < now_) {
    time = now_;
  }
  uint32_t index = AcquireSlot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  HeapEntry entry{time, next_seq_++, index, slot.generation};
  if (time == now_) {
    due_.push_back(entry);  // Fast path: due this tick, FIFO, no sift.
  } else if (time < horizon_ && time + kNearHorizon >= horizon_) {
    // Inside the wheel's exact window [horizon_ - kNearHorizon, horizon_):
    // bucket indices are collision-free only across a window this wide.
    if (time < wheel_pos_) {
      wheel_pos_ = time;  // Pull the scan cursor back to cover this tick.
    }
    WheelInsert(entry);
  } else {
    // Later than the window — or in the rare gap between the clock and a
    // far-ahead window — the far heap holds it until a migration.
    FarPush(entry);
  }
  ++live_count_;
  return (static_cast<EventId>(slot.generation) << 32) | index;
}

EventQueue::EventId EventQueue::ScheduleAfter(Tick delay, Callback fn) {
  return Schedule(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  uint32_t index = static_cast<uint32_t>(id);
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size() || slots_[index].generation != generation) {
    return false;  // Never issued, already run, or already cancelled.
  }
  // The wheel/heap entry stays until popped; the generation bump marks it
  // stale.
  ReleaseSlot(index);
  --live_count_;
  return true;
}

Tick EventQueue::NextEventLowerBound() const {
  Tick best = kNoEventTime;
  if (!DueEmpty()) {
    best = now_;
  }
  Tick from = wheel_pos_ < now_ ? now_ : wheel_pos_;
  int bidx = NextOccupiedBucket(from);
  if (bidx >= 0) {
    const Bucket& bucket = wheel_[static_cast<size_t>(bidx)];
    if (!bucket.empty()) {
      Tick t = bucket.entries[bucket.taken].time;
      if (t < best) {
        best = t;
      }
    }
  }
  if (!far_keys_.empty() && far_keys_.front() < best) {
    best = far_keys_.front();
  }
  return best;
}

bool EventQueue::PopNext(Tick limit, Tick* time, Callback* fn) {
  // `fn` must arrive empty: assigning into a non-empty Callback would run
  // the old target's destructor mid-pop, which may reenter the queue.
  if (wheel_pos_ < now_) {
    wheel_pos_ = now_;  // Ticks behind the clock are fully consumed.
  }
  // Locate the wheel's next live entry, dropping stale entries and
  // consumed buckets, refilling from the far heap when the wheel drains.
  HeapEntry* wheel_entry = nullptr;
  for (;;) {
    // Cursor-bucket fast path: within the window a non-empty bucket at
    // the cursor's index can only hold the cursor's own tick (indices are
    // unique across the window), so the bitmap scan is skippable.
    int bidx = static_cast<int>(wheel_pos_ & kWheelMask);
    if (wheel_pos_ >= horizon_ ||
        wheel_[static_cast<size_t>(bidx)].empty()) {
      bidx = NextOccupiedBucket(wheel_pos_);
    }
    if (bidx < 0) {
      if (!far_keys_.empty()) {
        // Advance the window to the earliest far event and pull everything
        // inside the new window across (stale entries migrate too; the
        // bucket scan drops them).
        Tick base = far_keys_.front();
        wheel_pos_ = base;
        horizon_ = base + kNearHorizon;
        do {
          WheelInsert(FarTop());
          FarPopTop();
        } while (!far_keys_.empty() && far_keys_.front() < horizon_);
        continue;
      }
      break;
    }
    Bucket& bucket = wheel_[static_cast<size_t>(bidx)];
    while (!bucket.empty() &&
           slots_[bucket.entries[bucket.taken].slot].generation !=
               bucket.entries[bucket.taken].generation) {
      ++bucket.taken;  // Stale: cancelled since it was scheduled.
    }
    if (bucket.empty()) {
      bucket.entries.clear();
      bucket.taken = 0;
      ClearBucket(static_cast<size_t>(bidx));
      continue;
    }
    wheel_entry = &bucket.entries[bucket.taken];
    wheel_pos_ = wheel_entry->time;  // Park the cursor on this tick.
    break;
  }
  while (!DueEmpty() &&
         slots_[DueFront().slot].generation != DueFront().generation) {
    DuePop();
  }

  // Choose the (time, seq) minimum. A due entry's time is always the
  // current tick; wheel leftovers at the current tick were scheduled
  // earlier (smaller seq) and win, wheel entries at later ticks lose to
  // due entries. The far heap can momentarily hold events earlier than
  // the wheel's window (scheduled into the gap between a lagging clock
  // and a far-ahead window), so when the wheel-future candidate would win
  // its top joins the comparison.
  enum class Source { kWheel, kDue, kFar };
  Source source;
  if (wheel_entry != nullptr && wheel_entry->time <= now_) {
    source = Source::kWheel;
  } else if (!DueEmpty()) {
    source = Source::kDue;
  } else if (wheel_entry == nullptr) {
    return false;  // The scan loop drained the far heap into the wheel.
  } else {
    source = Source::kWheel;
    while (!far_keys_.empty() &&
           slots_[far_payloads_.front().slot].generation !=
               far_payloads_.front().generation) {
      FarPopTop();
    }
    if (!far_keys_.empty() && FarTopEarlier(*wheel_entry)) {
      source = Source::kFar;
    }
  }
  HeapEntry top = source == Source::kDue
                      ? DueFront()
                      : (source == Source::kFar ? FarTop() : *wheel_entry);
  if (top.time > limit) {
    return false;
  }
  switch (source) {
    case Source::kDue:
      DuePop();
      break;
    case Source::kFar:
      FarPopTop();
      break;
    case Source::kWheel: {
      size_t index = static_cast<size_t>(top.time & kWheelMask);
      Bucket& bucket = wheel_[index];
      ++bucket.taken;
      if (bucket.empty()) {
        bucket.entries.clear();
        bucket.taken = 0;
        ClearBucket(index);
      }
      break;
    }
  }
  *time = top.time;
  *fn = std::move(slots_[top.slot].fn);
  ReleaseSlot(top.slot);
  --live_count_;
  return true;
}

bool EventQueue::RunNext() {
  Tick time;
  Callback fn;
  if (!PopNext(std::numeric_limits<Tick>::max(), &time, &fn)) {
    return false;
  }
  now_ = time;
  ++executed_count_;
  fn();
  return true;
}

size_t EventQueue::RunUntil(Tick end) {
  size_t executed = 0;
  for (;;) {
    Tick time;
    Callback fn;
    if (!PopNext(end, &time, &fn)) {
      break;
    }
    now_ = time;
    ++executed_count_;
    ++executed;
    fn();
  }
  now_ = end;
  return executed;
}

size_t EventQueue::RunAll() {
  size_t executed = 0;
  while (RunNext()) {
    ++executed;
  }
  return executed;
}

}  // namespace quanto
