// Discrete-event engine: a single global virtual clock shared by every node
// in the simulated network, with cancellable scheduled events.
//
// The Quanto paper's experiments run on real motes; here the event queue
// plays the role of physical time. Determinism matters: events at the same
// tick execute in schedule order (FIFO by sequence number), so a seeded run
// is exactly reproducible.
#ifndef QUANTO_SRC_SIM_EVENT_QUEUE_H_
#define QUANTO_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/units.h"

namespace quanto {

class EventQueue {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Tick Now() const { return now_; }

  // Schedules fn at absolute time `time`. Events in the past execute at the
  // current time (never before `Now()`); same-time events run in schedule
  // order. Returns an id usable with Cancel().
  EventId Schedule(Tick time, std::function<void()> fn);

  // Schedules fn `delay` ticks from now.
  EventId ScheduleAfter(Tick delay, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool Cancel(EventId id);

  // Executes the next event, advancing the clock. Returns false when empty.
  bool RunNext();

  // Runs every event with time <= end, then sets the clock to `end`.
  // Returns the number of events executed.
  size_t RunUntil(Tick end);

  // Runs for `duration` ticks from the current time.
  size_t RunFor(Tick duration) { return RunUntil(now_ + duration); }

  // Drains the queue completely (use with care: periodic reschedulers never
  // terminate; prefer RunUntil). Returns events executed.
  size_t RunAll();

  bool Empty() const { return live_.empty(); }
  size_t PendingCount() const { return live_.size(); }
  uint64_t executed_count() const { return executed_count_; }

 private:
  struct Item {
    Tick time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  bool PopNext(Item* out);

  Tick now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_count_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  // Ids scheduled and neither executed nor cancelled. Cancellation is lazy:
  // the heap entry of a cancelled event stays until popped, but only ids in
  // live_ count as pending.
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace quanto

#endif  // QUANTO_SRC_SIM_EVENT_QUEUE_H_
