// Discrete-event engine: a single global virtual clock shared by every node
// in the simulated network, with cancellable scheduled events.
//
// The Quanto paper's experiments run on real motes; here the event queue
// plays the role of physical time. Determinism matters: events at the same
// tick execute in schedule order (FIFO by sequence number), so a seeded run
// is exactly reproducible.
//
// Hot-path design (this engine bounds every many-node experiment):
//  * Callbacks are small-buffer Callback values — no heap allocation for
//    any closure up to 48 bytes, and events pop by move, never by copy.
//  * Event state lives in a slab of slots recycled through a free list;
//    ids pack (generation << 32) | slot, so Cancel() is an O(1) generation
//    compare — no hash lookups, no per-event set insertions.
//  * The ready queue is 4-ary implicit heaps of 24-byte entries (time,
//    FIFO sequence, slot, generation). Cancellation is lazy: a cancelled
//    event's entry stays in the heap until popped, where a generation
//    mismatch identifies it as stale and it is discarded in O(1) per entry.
//  * Events scheduled at (or clamped to) the current tick — task dispatch,
//    immediate completions — bypass the heaps entirely: they go to a FIFO
//    side queue that is trivially sorted by (time, seq), so the common
//    schedule-now/run-now pattern costs no sift at all. The pop path merges
//    the structures with a single comparison.
//  * The pending set is two-level. Short-delay events (frame completions,
//    SPI chunks, interrupt latencies — the bulk of all traffic) land in a
//    timing wheel covering the next kNearHorizon ticks: one FIFO bucket
//    per tick, so push is O(1) with no sift at all, and within a bucket
//    insertion order IS (time, seq) order because seq is monotone. A
//    two-level bitmap finds the next occupied bucket in O(1). Long-delay
//    events (LPL check timers hundreds of milliseconds out) wait in a
//    4-ary "far" heap and migrate into the wheel in horizon-sized batches
//    only when it drains. Invariant: every far entry's time is >=
//    horizon_, every wheel entry's is in [wheel_pos_, horizon_), so the
//    wheel's next entry is always the global minimum among non-due events.
//  * The far heap stores keys and payloads in separate parallel arrays:
//    sift compares touch a dense array of 8-byte time keys (three per
//    cache line vs one 24-byte entry), and the (seq, slot, generation)
//    payload is fetched only on pop — or on the rare same-time tie, where
//    the sequence number breaks the tie exactly. At 1000+ motes the far
//    heap holds one long timer per duty-cycled node, so compare locality
//    is what bounds migration cost.
#ifndef QUANTO_SRC_SIM_EVENT_QUEUE_H_
#define QUANTO_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/util/callback.h"
#include "src/util/units.h"

namespace quanto {

class EventQueue {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Tick Now() const { return now_; }

  // Stable address of the clock word, for Clock::NowSource fast paths.
  const Tick* NowPtr() const { return &now_; }

  // Schedules fn at absolute time `time`. Events in the past execute at the
  // current time (never before `Now()`); same-time events run in schedule
  // order. Returns an id usable with Cancel().
  EventId Schedule(Tick time, Callback fn);

  // Schedules fn `delay` ticks from now.
  EventId ScheduleAfter(Tick delay, Callback fn);

  // Cancels a pending event in O(1). Returns true if the event was still
  // pending.
  bool Cancel(EventId id);

  // Executes the next event, advancing the clock. Returns false when empty.
  bool RunNext();

  // Runs every event with time <= end, then sets the clock to `end`.
  // Returns the number of events executed.
  size_t RunUntil(Tick end);

  // Runs for `duration` ticks from the current time.
  size_t RunFor(Tick duration) { return RunUntil(now_ + duration); }

  // Drains the queue completely (use with care: periodic reschedulers never
  // terminate; prefer RunUntil). Returns events executed.
  size_t RunAll();

  bool Empty() const { return live_count_ == 0; }
  size_t PendingCount() const { return live_count_; }
  uint64_t executed_count() const { return executed_count_; }

  // "Nothing pending" sentinel for NextEventLowerBound().
  static constexpr Tick kNoEventTime = ~Tick{0};

  // Lower bound on the time of the next live event, without popping. May
  // be earlier than the true next event while lazily-cancelled entries are
  // still buffered (a stale entry's time is reported as if live). Returns
  // kNoEventTime when nothing is pending at all. The sharded runner uses
  // this to fast-forward across empty lockstep windows; a conservatively
  // early bound only costs an empty window, never correctness.
  Tick NextEventLowerBound() const;

 private:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  // Slab slot: owns the callback of one live event. Freed slots bump their
  // generation so every previously issued id for the slot goes stale, then
  // chain into the free list for O(1) reuse.
  struct Slot {
    uint32_t generation = 1;
    uint32_t next_free = kNoSlot;
    Callback fn;
  };

  // 4-ary heap entry. Self-contained ordering keys (time, seq) so a stale
  // entry still sorts correctly after its slot has been recycled.
  struct HeapEntry {
    Tick time;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  // Width of the timing wheel's window, in ticks (8 ms at the 1 MHz tick
  // rate). Power of two: bucket index is time & (kNearHorizon - 1). Wide
  // enough that wake-up sequences and CCA windows stay inside the wheel,
  // narrow enough that it stays cache-resident (measured best among
  // 1024/8192/32768 on the 128-mote scale bench).
  static constexpr Tick kNearHorizon = 8192;
  static constexpr Tick kWheelMask = kNearHorizon - 1;
  static constexpr size_t kBitmapWords = kNearHorizon / 64;

  // One wheel bucket: FIFO of entries for one exact tick. `taken` marks
  // how many have been consumed (the vector's capacity is reused forever).
  struct Bucket {
    std::vector<HeapEntry> entries;
    size_t taken = 0;
    bool empty() const { return taken >= entries.size(); }
  };

  // The single shared pop path: extracts the next live event with
  // time <= limit (by move), discarding stale entries on the way. Returns
  // false when no live event is due by `limit`.
  bool PopNext(Tick limit, Tick* time, Callback* fn);

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t index);
  void WheelInsert(const HeapEntry& entry);

  // --- Split-array far heap --------------------------------------------------
  // far_keys_[i] / far_payloads_[i] describe one entry; heap order is
  // (time, seq) with time in the key array and seq consulted only on ties.
  struct FarPayload {
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };
  bool FarEarlier(size_t a, size_t b) const {
    if (far_keys_[a] != far_keys_[b]) {
      return far_keys_[a] < far_keys_[b];
    }
    return far_payloads_[a].seq < far_payloads_[b].seq;
  }
  // True when the far top sorts before `e` by (time, seq).
  bool FarTopEarlier(const HeapEntry& e) const {
    if (far_keys_.front() != e.time) {
      return far_keys_.front() < e.time;
    }
    return far_payloads_.front().seq < e.seq;
  }
  HeapEntry FarTop() const {
    const FarPayload& p = far_payloads_.front();
    return HeapEntry{far_keys_.front(), p.seq, p.slot, p.generation};
  }
  void FarPush(const HeapEntry& entry);
  void FarPopTop();
  // Index of the first occupied bucket at or after `from`'s bucket within
  // the window [from, horizon_), or -1 when the wheel is empty there.
  int NextOccupiedBucket(Tick from) const;
  void MarkBucket(size_t index) {
    occupied_[index / 64] |= uint64_t{1} << (index % 64);
  }
  void ClearBucket(size_t index) {
    occupied_[index / 64] &= ~(uint64_t{1} << (index % 64));
  }

  Tick now_ = 0;
  Tick wheel_pos_ = 0;  // Scan cursor; wheel covers [wheel_pos_, horizon_).
  Tick horizon_ = 0;    // Wheel/far boundary; grows monotonically.
  uint64_t next_seq_ = 0;
  uint64_t executed_count_ = 0;
  size_t live_count_ = 0;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
  std::vector<Bucket> wheel_ = std::vector<Bucket>(kNearHorizon);
  uint64_t occupied_[kBitmapWords] = {};
  std::vector<Tick> far_keys_;
  std::vector<FarPayload> far_payloads_;
  // Events due at the current tick, in schedule order. Since the clock
  // never goes backwards and seq is monotone, this FIFO is always sorted
  // by (time, seq) by construction. Vector + take cursor: it fully drains
  // every tick, so the storage resets instead of shifting.
  std::vector<HeapEntry> due_;
  size_t due_taken_ = 0;
  bool DueEmpty() const { return due_taken_ >= due_.size(); }
  const HeapEntry& DueFront() const { return due_[due_taken_]; }
  void DuePop() {
    if (++due_taken_ >= due_.size()) {
      due_.clear();
      due_taken_ = 0;
    }
  }
};

}  // namespace quanto

#endif  // QUANTO_SRC_SIM_EVENT_QUEUE_H_
