// A simulated mote's OS kernel: CPU scheduler + virtual timers + clock,
// sharing one global EventQueue with every other node in the network.
//
// The node layer is substrate-only: power modelling, metering, radios and
// drivers attach on top (see src/apps/mote.h for the full HydroWatch
// assembly). Keeping Node free of those dependencies mirrors the paper's
// layering, where TinyOS core primitives are instrumented independently of
// any particular device driver.
#ifndef QUANTO_SRC_SIM_NODE_H_
#define QUANTO_SRC_SIM_NODE_H_

#include <memory>

#include "src/core/activity.h"
#include "src/core/hooks.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/sim/virtual_timers.h"
#include "src/util/arena.h"

namespace quanto {

// Clock adapter giving core components read access to virtual time.
class SimClock : public Clock {
 public:
  explicit SimClock(const EventQueue* queue) : queue_(queue) {}
  Tick Now() const override { return queue_->Now(); }
  const Tick* NowSource() const override { return queue_->NowPtr(); }

 private:
  const EventQueue* queue_;
};

class Node {
 public:
  struct Config {
    node_id_t id = 1;
    CpuScheduler::Config cpu;
    VirtualTimers::Config timers;
    // Construction arena for the kernel components (see src/util/arena.h);
    // null keeps the historical per-component heap allocations.
    Arena* arena = nullptr;
  };

  Node(EventQueue* queue, const Config& config);

  node_id_t id() const { return config_.id; }
  EventQueue& queue() { return *queue_; }
  SimClock& clock() { return clock_; }
  CpuScheduler& cpu() { return *cpu_; }
  VirtualTimers& timers() { return *timers_; }

  // Label for a node-local activity id on this node.
  act_t Label(act_id_t id) const { return MakeActivity(config_.id, id); }

 private:
  EventQueue* queue_;
  Config config_;
  SimClock clock_;
  ArenaPtr<CpuScheduler> cpu_;
  ArenaPtr<VirtualTimers> timers_;
};

}  // namespace quanto

#endif  // QUANTO_SRC_SIM_NODE_H_
