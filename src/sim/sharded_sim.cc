#include "src/sim/sharded_sim.h"

#include <algorithm>
#include <chrono>

namespace quanto {

ShardedSimulator::ShardedSimulator(const Config& config) : config_(config) {
  size_t shards = std::max<size_t>(1, config.shards);
  config_.shards = shards;
  if (config_.lookahead == 0) {
    config_.lookahead = 1;
  }
  threads_ = std::min(std::max<size_t>(1, config.threads), shards);
  queues_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    queues_.push_back(std::make_unique<EventQueue>());
  }
  // The coordinating thread is worker 0; spawn the rest.
  for (size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ShardedSimulator::RunShardRange(size_t worker, Tick target) {
  size_t shards = queues_.size();
  size_t begin = worker * shards / threads_;
  size_t end = (worker + 1) * shards / threads_;
  for (size_t s = begin; s < end; ++s) {
    queues_[s]->RunUntil(target);
    // Pre-barrier phase for this shard: once its window is done nothing
    // can touch its motes until the coordinator's hooks (cross-shard
    // effects are mailboxed until then), so shard-local barrier work runs
    // here — concurrently with other shards still in their windows.
    for (const ShardWindowTask& task : shard_tasks_) {
      task(s, target);
    }
  }
}

void ShardedSimulator::RunDrainRange(size_t worker, Tick target) {
  size_t shards = queues_.size();
  size_t begin = worker * shards / threads_;
  size_t end = (worker + 1) * shards / threads_;
  for (size_t s = begin; s < end; ++s) {
    for (const ShardDrainTask& task : drain_tasks_) {
      task(s, target);
    }
  }
}

void ShardedSimulator::DispatchPhase(Phase phase, Tick target) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    target_ = target;
    phase_ = phase;
    running_ = workers_.size();
    ++epoch_;
  }
  cv_work_.notify_all();
  if (phase == Phase::kWindow) {
    RunShardRange(0, target);
  } else {
    RunDrainRange(0, target);
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return running_ == 0; });
}

void ShardedSimulator::WorkerLoop(size_t worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    Tick target;
    Phase phase;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      target = target_;
      phase = phase_;
    }
    if (phase == Phase::kWindow) {
      RunShardRange(worker, target);
    } else {
      RunDrainRange(worker, target);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) {
        cv_done_.notify_one();
      }
    }
  }
}

uint64_t ShardedSimulator::RunUntil(Tick end) {
  uint64_t executed_before = executed_count();
  while (now_ < end) {
    std::chrono::steady_clock::time_point window_start;
    if (profile_barriers_) {
      window_start = std::chrono::steady_clock::now();
    }
    // Place the window. The lookahead guarantee only has to cover ticks
    // where events can run, so a globally idle gap can be skipped: if no
    // shard has anything before `bound`, the window may end as late as
    // bound-1+W while still never executing more than W ticks of busy
    // time — and every cross-shard post made inside it still delivers
    // strictly after it.
    Tick bound = EventQueue::kNoEventTime;
    for (const auto& q : queues_) {
      bound = std::min(bound, q->NextEventLowerBound());
    }
    Tick base = now_;
    if (bound == EventQueue::kNoEventTime) {
      base = end;  // Nothing pending anywhere: one final empty window.
    } else if (bound > now_ + 1) {
      base = std::min(bound - 1, end);
    }
    Tick target = std::min(end, base + config_.lookahead);
    if (target > end || target <= now_) {
      target = end;
    }

    if (threads_ == 1) {
      RunShardRange(0, target);
    } else {
      DispatchPhase(Phase::kWindow, target);
    }

    // Inter-window parallel phase: all shards are parked at `target`, so
    // every mailbox lane published during the window is complete and
    // frozen. Each shard now consumes its own inbound cross-shard posts
    // (destination-owned, write-local — see AddShardDrainTask) in
    // parallel, before the serial hooks resume.
    if (!drain_tasks_.empty()) {
      std::chrono::steady_clock::time_point drain_start;
      if (profile_barriers_) {
        drain_start = std::chrono::steady_clock::now();
      }
      if (threads_ == 1) {
        RunDrainRange(0, target);
      } else {
        DispatchPhase(Phase::kDrain, target);
      }
      if (profile_barriers_) {
        drain_phase_us_samples_.push_back(static_cast<uint32_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - drain_start)
                .count()));
      }
    } else if (profile_barriers_) {
      drain_phase_us_samples_.push_back(0);
    }

    // Barrier: all shards parked at `target`, drain phase complete.
    // Exchange remaining cross-shard effects (and any other per-window
    // bookkeeping) single-threaded, in registration order — identical at
    // every thread count.
    if (profile_barriers_) {
      auto hooks_start = std::chrono::steady_clock::now();
      for (const BarrierHook& hook : hooks_) {
        hook(target);
      }
      auto hooks_stop = std::chrono::steady_clock::now();
      barrier_us_samples_.push_back(static_cast<uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              hooks_stop - hooks_start)
              .count()));
      window_us_samples_.push_back(static_cast<uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              hooks_stop - window_start)
              .count()));
    } else {
      for (const BarrierHook& hook : hooks_) {
        hook(target);
      }
    }
    now_ = target;
    ++windows_run_;
  }
  return executed_count() - executed_before;
}

uint64_t ShardedSimulator::executed_count() const {
  uint64_t total = 0;
  for (const auto& q : queues_) {
    total += q->executed_count();
  }
  return total;
}

}  // namespace quanto
