// The simulated MCU execution engine: a TinyOS-style single-stack scheduler.
//
// TinyOS multiplexes parallel activities over one stack: the schedulable
// unit is a task; tasks run to completion and do not preempt each other, but
// are preempted by interrupts (which are not reentrant on the MSP430, so a
// raised interrupt waits for the in-service one to finish).
//
// Execution is modelled as *frames*. Dispatching a unit (task or IRQ) opens
// a frame: the unit's body runs immediately (posting tasks, painting
// devices, toggling power states), and the frame then occupies the CPU for
// the unit's declared cycle cost. While any frame is open the CPU power
// state is ACTIVE; when the frame stack empties and no task is pending, the
// CPU drops to its sleep state and its activity becomes <node>:Idle.
//
// Quanto's TinyOS scheduler instrumentation is reproduced here: posting a
// task saves the current CPU activity, and the saved label is restored just
// before the task body runs (Section 3.3); interrupt frames run under their
// statically assigned proxy activity and restore the interrupted activity
// on return.
#ifndef QUANTO_SRC_SIM_CPU_H_
#define QUANTO_SRC_SIM_CPU_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/activity.h"
#include "src/core/activity_device.h"
#include "src/core/hooks.h"
#include "src/core/power_state.h"
#include "src/sim/event_queue.h"
#include "src/util/units.h"

namespace quanto {

class CpuScheduler : public CpuChargeHook {
 public:
  struct Config {
    node_id_t node_id = 1;
    res_id_t cpu_resource = 0;
    // Power state values logged for the CPU sink; defaults follow
    // src/hw/sinks.h (kCpuActive = 5, kCpuLpm3 = 1 on the MSP430 sink).
    powerstate_t active_state = 5;
    powerstate_t sleep_state = 1;
    // Fixed dispatch overhead added to every task (queue pop, jump).
    Cycles task_dispatch_overhead = 6;
  };

  CpuScheduler(EventQueue* queue, const Config& config);

  // --- TinyOS task interface ------------------------------------------------

  // `post`: enqueues a run-to-completion task. The current CPU activity is
  // saved with the task and restored when it runs (Quanto instrumentation).
  void PostTask(Cycles cost, Callback body);

  // Posts a task that runs under an explicitly saved label. Control-flow
  // deferral mechanisms (timers, forwarding queues) use this to carry the
  // label they captured at deferral time.
  void PostTaskWithActivity(act_t activity, Cycles cost, Callback body);

  // --- Interrupts -----------------------------------------------------------

  // Raises an interrupt whose handler runs under the node-local proxy
  // activity `proxy_id`. If another interrupt is in service the new one is
  // pended (MSP430 interrupts are not reentrant); otherwise it preempts the
  // running task immediately.
  void RaiseInterrupt(act_id_t proxy_id, Cycles cost, Callback body);

  // --- Quanto hook ----------------------------------------------------------

  // Extends the currently executing frame by `cycles` (used by the logger to
  // charge its 102-cycle synchronous cost). Charges arriving while the CPU
  // is idle are only accounted statistically (idle_charged_cycles) — in the
  // real system every log call runs in some CPU context, but simulator
  // bookkeeping can fire while no frame is open.
  void ChargeCycles(Cycles cycles) override;

  // --- State and instrumentation accessors ----------------------------------

  SingleActivityDevice& activity() { return activity_; }
  PowerStateComponent& power_state() { return power_; }
  node_id_t node_id() const { return config_.node_id; }

  bool idle() const { return frames_.empty(); }
  size_t pending_tasks() const { return task_queue_.size(); }
  bool in_interrupt() const;

  // Label for a node-local activity id on this node.
  act_t Label(act_id_t id) const { return MakeActivity(config_.node_id, id); }

  // Total time the CPU has spent with at least one frame open, up to `now`.
  Tick ActiveTime(Tick now) const;

  uint64_t tasks_run() const { return tasks_run_; }
  uint64_t interrupts_run() const { return interrupts_run_; }
  Cycles idle_charged_cycles() const { return idle_charged_cycles_; }

  // Invoked every time the CPU transitions to idle with an empty task queue
  // (the continuous-logging drain hook; Section 4.4 runs the drain "only
  // when the CPU would otherwise be idle").
  void SetIdleHook(Callback hook) { idle_hook_ = std::move(hook); }

 private:
  struct Task {
    act_t activity;
    Cycles cost;
    Callback body;
  };
  struct PendingIrq {
    act_id_t proxy_id;
    Cycles cost;
    Callback body;
  };
  struct Frame {
    act_t activity;          // Label the frame runs under.
    act_t interrupted;       // Label to restore (IRQ frames only).
    bool is_irq = false;
    Tick end = 0;            // Completion time while running.
    Tick remaining = 0;      // Residual cost while preempted.
    bool paused = false;
    EventQueue::EventId completion = EventQueue::kInvalidEvent;
  };

  void ScheduleDispatch();
  void MaybeDispatchTask();
  void BeginTaskFrame(Task task);
  void BeginIrqFrame(PendingIrq irq);
  void ScheduleCompletion(Frame* frame);
  void OnFrameComplete();
  void WakeUp();
  void GoIdle();

  EventQueue* queue_;
  Config config_;
  SingleActivityDevice activity_;
  PowerStateComponent power_;

  std::deque<Task> task_queue_;
  std::deque<PendingIrq> pending_irqs_;
  std::vector<Frame> frames_;
  bool dispatch_scheduled_ = false;

  // Active-time integration.
  bool awake_ = false;
  Tick awake_since_ = 0;
  Tick active_accum_ = 0;

  uint64_t tasks_run_ = 0;
  uint64_t interrupts_run_ = 0;
  Cycles idle_charged_cycles_ = 0;
  Callback idle_hook_;
};

}  // namespace quanto

#endif  // QUANTO_SRC_SIM_CPU_H_
