#include "src/sim/cpu.h"

#include <utility>

namespace quanto {

CpuScheduler::CpuScheduler(EventQueue* queue, const Config& config)
    : queue_(queue),
      config_(config),
      activity_(config.cpu_resource, MakeActivity(config.node_id, kActIdle)),
      power_(config.cpu_resource, config.sleep_state) {}

bool CpuScheduler::in_interrupt() const {
  return !frames_.empty() && frames_.back().is_irq;
}

Tick CpuScheduler::ActiveTime(Tick now) const {
  Tick total = active_accum_;
  if (awake_ && now > awake_since_) {
    total += now - awake_since_;
  }
  return total;
}

void CpuScheduler::PostTask(Cycles cost, Callback body) {
  // Quanto instrumentation of the TinyOS scheduler: save the current CPU
  // activity when a task is posted.
  PostTaskWithActivity(activity_.get(), cost, std::move(body));
}

void CpuScheduler::PostTaskWithActivity(act_t activity, Cycles cost,
                                        Callback body) {
  task_queue_.push_back(
      Task{activity, cost + config_.task_dispatch_overhead, std::move(body)});
  ScheduleDispatch();
}

void CpuScheduler::ScheduleDispatch() {
  if (dispatch_scheduled_) {
    return;
  }
  dispatch_scheduled_ = true;
  queue_->Schedule(queue_->Now(), [this] {
    dispatch_scheduled_ = false;
    MaybeDispatchTask();
  });
}

void CpuScheduler::MaybeDispatchTask() {
  if (!frames_.empty() || task_queue_.empty()) {
    return;
  }
  Task task = std::move(task_queue_.front());
  task_queue_.pop_front();
  BeginTaskFrame(std::move(task));
}

void CpuScheduler::WakeUp() {
  if (!awake_) {
    awake_ = true;
    awake_since_ = queue_->Now();
    power_.set(config_.active_state);
  }
}

void CpuScheduler::GoIdle() {
  if (awake_) {
    active_accum_ += queue_->Now() - awake_since_;
    awake_ = false;
  }
  // The idle CPU belongs to the Idle pseudo-activity (Table 3 charges the
  // CPU's 47.9 idle seconds of Blink to 1:Idle).
  activity_.set(Label(kActIdle));
  power_.set(config_.sleep_state);
  if (idle_hook_) {
    idle_hook_();
  }
}

void CpuScheduler::BeginTaskFrame(Task task) {
  WakeUp();
  ++tasks_run_;
  frames_.push_back(Frame{});
  Frame& frame = frames_.back();
  frame.activity = task.activity;
  frame.is_irq = false;
  frame.end = queue_->Now() + task.cost;
  // Restore the saved label just before giving control to the task.
  activity_.set(task.activity);
  if (task.body) {
    task.body();
  }
  // The body may have charged cycles (extending frame.end) or raised
  // interrupts (pausing this frame); only schedule completion if the frame
  // is still running.
  Frame& current = frames_.front();
  if (!current.paused && current.completion == EventQueue::kInvalidEvent) {
    ScheduleCompletion(&current);
  }
}

void CpuScheduler::RaiseInterrupt(act_id_t proxy_id, Cycles cost,
                                  Callback body) {
  if (in_interrupt()) {
    // Non-reentrant interrupts: pend until the in-service handler returns.
    pending_irqs_.push_back(PendingIrq{proxy_id, cost, std::move(body)});
    return;
  }
  BeginIrqFrame(PendingIrq{proxy_id, cost, std::move(body)});
}

void CpuScheduler::BeginIrqFrame(PendingIrq irq) {
  // Preempt the running task frame, if any.
  if (!frames_.empty()) {
    Frame& top = frames_.back();
    Tick now = queue_->Now();
    top.remaining = top.end > now ? top.end - now : 0;
    top.paused = true;
    if (top.completion != EventQueue::kInvalidEvent) {
      queue_->Cancel(top.completion);
      top.completion = EventQueue::kInvalidEvent;
    }
  }
  WakeUp();
  ++interrupts_run_;
  frames_.push_back(Frame{});
  Frame& frame = frames_.back();
  frame.activity = Label(irq.proxy_id);
  frame.interrupted = activity_.get();
  frame.is_irq = true;
  frame.end = queue_->Now() + irq.cost;
  // An interrupt routine temporarily sets the CPU activity to its own proxy
  // activity (Section 3.3).
  activity_.set(frame.activity);
  if (irq.body) {
    irq.body();
  }
  Frame& current = frames_.back();
  if (current.is_irq && current.completion == EventQueue::kInvalidEvent) {
    ScheduleCompletion(&current);
  }
}

void CpuScheduler::ScheduleCompletion(Frame* frame) {
  Tick end = frame->end;
  if (end < queue_->Now()) {
    end = queue_->Now();
  }
  frame->completion = queue_->Schedule(end, [this] { OnFrameComplete(); });
}

void CpuScheduler::ChargeCycles(Cycles cycles) {
  if (frames_.empty()) {
    idle_charged_cycles_ += cycles;
    return;
  }
  Frame& top = frames_.back();
  top.end += cycles;
  if (!top.paused && top.completion != EventQueue::kInvalidEvent) {
    queue_->Cancel(top.completion);
    top.completion = EventQueue::kInvalidEvent;
    ScheduleCompletion(&top);
  }
}

void CpuScheduler::OnFrameComplete() {
  bool was_irq = frames_.back().is_irq;
  act_t interrupted = frames_.back().interrupted;
  frames_.pop_back();

  if (was_irq) {
    // Return from interrupt: restore the label the handler preempted.
    activity_.set(interrupted);
  }

  // Interrupts pended during the handler run next (hardware priority over
  // the task the handler interrupted).
  if (!pending_irqs_.empty() && !in_interrupt()) {
    PendingIrq irq = std::move(pending_irqs_.front());
    pending_irqs_.pop_front();
    BeginIrqFrame(std::move(irq));
    return;
  }

  if (!frames_.empty()) {
    // Resume the preempted frame.
    Frame& top = frames_.back();
    top.paused = false;
    top.end = queue_->Now() + top.remaining;
    top.remaining = 0;
    activity_.set(top.activity);
    ScheduleCompletion(&top);
    return;
  }

  if (!task_queue_.empty()) {
    Task task = std::move(task_queue_.front());
    task_queue_.pop_front();
    BeginTaskFrame(std::move(task));
    return;
  }

  GoIdle();
}

}  // namespace quanto
