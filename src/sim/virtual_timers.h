// The virtualised timer subsystem (TinyOS VirtualizeTimerC analogue).
//
// Many logical timers are multiplexed over one hardware compare register.
// When the compare fires, the int_TIMER interrupt posts the VTimer task,
// which dispatches expired logical timers and then performs bookkeeping
// (computing the next deadline) — the structure visible in Figure 11(b):
// int_TIMER proxy, then VTimer, then the fired activities, then VTimer
// again.
//
// Quanto instrumentation (Section 3.3): each logical timer saves the CPU
// activity current when it was started, and its callback task is posted
// under that saved label. Started timers also add their label to the
// hardware timer's MultiActivityDevice while armed.
#ifndef QUANTO_SRC_SIM_VIRTUAL_TIMERS_H_
#define QUANTO_SRC_SIM_VIRTUAL_TIMERS_H_

#include <cstdint>
#include <vector>

#include "src/core/activity.h"
#include "src/core/activity_device.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/util/units.h"

namespace quanto {

class VirtualTimers {
 public:
  using TimerId = uint32_t;
  static constexpr TimerId kInvalidTimer = 0;

  struct Config {
    res_id_t hw_timer_resource = 1;
    // Proxy activity of the compare interrupt (int_TIMER in Figure 11).
    act_id_t irq_proxy = kActIntTimer;
    Cycles irq_cost = 25;         // Compare-interrupt handler.
    Cycles vtimer_fire_cost = 40; // VTimer task: scan the timer table.
    Cycles vtimer_bookkeeping_cost = 35;  // Recompute next deadline.
  };

  VirtualTimers(EventQueue* queue, CpuScheduler* cpu, const Config& config);

  // Starts a periodic timer firing every `interval`; the callback runs as a
  // task of `callback_cost` cycles under the activity saved now.
  TimerId StartPeriodic(Tick interval, Cycles callback_cost,
                        Callback callback);

  // One-shot variant.
  TimerId StartOneShot(Tick delay, Cycles callback_cost, Callback callback);

  // Stops a timer; safe to call on an already-fired one-shot.
  void Stop(TimerId id);

  size_t armed_count() const { return armed_; }
  MultiActivityDevice& hw_device() { return hw_device_; }
  uint64_t fires() const { return fires_; }

 private:
  // Timer table slot. Timers per node are few, so a flat slab with linear
  // scans beats a node-allocating map: arming/stopping a timer and the
  // per-fire dispatch never touch the heap once the table has grown to the
  // node's working set.
  struct Timer {
    TimerId id = kInvalidTimer;  // kInvalidTimer marks a free slot.
    Tick deadline = 0;
    Tick interval = 0;  // 0 for one-shot.
    Cycles callback_cost = 0;
    act_t saved_activity = 0;
    Callback callback;
  };

  TimerId Start(Tick delay, Tick interval, Cycles callback_cost,
                Callback callback);
  Timer* Find(TimerId id);
  void UpdateCompare();
  void OnCompareInterrupt();
  void VTimerTask();

  EventQueue* queue_;
  CpuScheduler* cpu_;
  Config config_;
  MultiActivityDevice hw_device_;
  std::vector<Timer> timers_;
  std::vector<TimerId> expired_scratch_;  // Reused by VTimerTask.
  size_t armed_ = 0;
  TimerId next_id_ = 1;
  EventQueue::EventId compare_event_ = EventQueue::kInvalidEvent;
  Tick compare_deadline_ = 0;
  uint64_t fires_ = 0;
};

// A raw periodic hardware interrupt with no virtual-timer layering, used to
// model effects like the MSP430 DCO-calibration interrupt the paper's
// Figure 15 caught firing 16 times per second.
class PeriodicInterrupt {
 public:
  PeriodicInterrupt(EventQueue* queue, CpuScheduler* cpu, act_id_t proxy_id,
                    Tick period, Cycles handler_cost);
  ~PeriodicInterrupt();

  void Start();
  void Stop();
  bool running() const { return event_ != EventQueue::kInvalidEvent; }
  uint64_t fires() const { return fires_; }

 private:
  void Fire();

  EventQueue* queue_;
  CpuScheduler* cpu_;
  act_id_t proxy_id_;
  Tick period_;
  Cycles handler_cost_;
  EventQueue::EventId event_ = EventQueue::kInvalidEvent;
  uint64_t fires_ = 0;
};

}  // namespace quanto

#endif  // QUANTO_SRC_SIM_VIRTUAL_TIMERS_H_
