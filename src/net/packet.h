// 802.15.4-style frame carried by the simulated medium, including the
// hidden Quanto activity field.
//
// Section 3.3: "we added a hidden field to the TinyOS Active Message (AM)
// implementation ... When a packet is submitted to the OS for transmission,
// the packet's activity field is set to the CPU's current activity ...
// labels are 16-bit integers representing both the node id and the activity
// id, which is sufficient for networks of up to 256 nodes with 256 distinct
// activity ids."
//
// Node addressing uses 802.15.4 short addresses, which are 16 bits on the
// wire — addresses up to 0xFFFE (and broadcast, which maps to the short
// broadcast 0xFFFF) ride in them for free; wider node ids switch that
// address to the extended 48-bit form, costing 4 extra header bytes per
// wide address. The hidden activity field likewise stays the paper's
// 2 bytes whenever the label fits the legacy <8-bit node : 8-bit id>
// encoding (every ≤256-node workload, keeping their airtimes
// byte-identical), grows to 4 bytes for 16-bit-origin labels, and to
// 6 bytes only for wide-node labels. Pre-widening workloads are therefore
// byte-identical on the air.
#ifndef QUANTO_SRC_NET_PACKET_H_
#define QUANTO_SRC_NET_PACKET_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "src/core/activity.h"

namespace quanto {

// kBroadcastAddr lives in src/core/activity.h (the widened id space and
// its legacy 0xFFFF mapping are defined next to the label encodings).

// Payload byte buffer with inline storage for typical sensor payloads.
//
// Packets are copied on every hop of the delivery path (medium snapshot,
// RXFIFO download closure, decode task closure), so a std::vector payload
// means several heap round-trips per delivered frame — measurable at
// many-node scale. Payloads up to kInline bytes (the common telemetry
// case) live inside the packet; larger ones (trace-dump batches) fall back
// to the heap transparently.
class PayloadBytes {
 public:
  static constexpr size_t kInline = 16;

  PayloadBytes() = default;
  PayloadBytes(std::initializer_list<uint8_t> init) {
    assign(init.begin(), init.end());
  }
  PayloadBytes(const PayloadBytes& other) { CopyFrom(other); }
  PayloadBytes(PayloadBytes&& other) noexcept { MoveFrom(&other); }
  PayloadBytes& operator=(const PayloadBytes& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  PayloadBytes& operator=(PayloadBytes&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }
  PayloadBytes& operator=(std::initializer_list<uint8_t> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  PayloadBytes& operator=(const std::vector<uint8_t>& v) {
    assign(v.begin(), v.end());
    return *this;
  }
  ~PayloadBytes() { Release(); }

  template <typename It,
            typename = std::enable_if_t<!std::is_integral_v<It>>>
  void assign(It first, It last) {
    clear();
    for (It it = first; it != last; ++it) {
      push_back(*it);
    }
  }
  void assign(size_t n, uint8_t value) {
    clear();
    Reserve(n);
    std::memset(data(), value, n);
    size_ = static_cast<uint32_t>(n);
  }

  void push_back(uint8_t value) {
    if (size_ == capacity_) {
      Reserve(capacity_ * 2);
    }
    data()[size_++] = value;
  }

  void clear() { size_ = 0; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t* data() { return capacity_ > kInline ? heap_ : inline_; }
  const uint8_t* data() const {
    return capacity_ > kInline ? heap_ : inline_;
  }

  uint8_t& operator[](size_t i) { return data()[i]; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  uint8_t* begin() { return data(); }
  uint8_t* end() { return data() + size_; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + size_; }

  friend bool operator==(const PayloadBytes& a, const PayloadBytes& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_) == 0;
  }
  friend bool operator!=(const PayloadBytes& a, const PayloadBytes& b) {
    return !(a == b);
  }

  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(begin(), end());
  }

 private:
  void Reserve(size_t n) {
    if (n <= capacity_) {
      return;
    }
    size_t cap = capacity_;
    while (cap < n) {
      cap *= 2;
    }
    uint8_t* grown = new uint8_t[cap];
    std::memcpy(grown, data(), size_);
    if (capacity_ > kInline) {
      delete[] heap_;
    }
    heap_ = grown;
    capacity_ = static_cast<uint32_t>(cap);
  }
  void Release() {
    if (capacity_ > kInline) {
      delete[] heap_;
    }
    capacity_ = kInline;
    size_ = 0;
  }
  void CopyFrom(const PayloadBytes& other) {
    Reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_);
    size_ = other.size_;
  }
  void MoveFrom(PayloadBytes* other) {
    if (other->capacity_ > kInline) {
      heap_ = other->heap_;
      capacity_ = other->capacity_;
      size_ = other->size_;
      other->capacity_ = kInline;
      other->size_ = 0;
      return;
    }
    std::memcpy(inline_, other->inline_, other->size_);
    size_ = other->size_;
    other->size_ = 0;
  }

  uint32_t size_ = 0;
  uint32_t capacity_ = kInline;
  union {
    uint8_t inline_[kInline];
    uint8_t* heap_;
  };
};

struct Packet {
  node_id_t src = 0;
  node_id_t dst = 0;
  uint8_t am_type = 0;      // Active Message dispatch id.
  act_t activity = 0;       // Hidden Quanto label (2/4/6 bytes on the wire).
  PayloadBytes payload;

  // On-air size of the hidden activity field: the paper's 2 bytes for
  // legacy-encodable labels, 4 for v2-encodable ones, 6 for wide-node
  // labels.
  size_t ActivityWireBytes() const {
    return IsLegacyEncodable(activity) ? 2 : IsV2Encodable(activity) ? 4 : 6;
  }

  // Extra MAC-header bytes beyond the two 16-bit short addresses: each
  // address that does not fit a short address (node id > 0xFFFE; broadcast
  // maps to the short broadcast 0xFFFF for free) is carried in the
  // extended form instead, +4 bytes over its short slot.
  size_t WideAddressBytes() const {
    auto wide = [](node_id_t a) {
      return a > 0xFFFE && a != kBroadcastAddr;
    };
    return (wide(src) ? 4u : 0u) + (wide(dst) ? 4u : 0u);
  }

  // Bytes occupied on the air: 802.15.4 synchronisation header + PHY
  // header (6), MAC header + FCS (11 with 16-bit short addresses, plus
  // any extended-address bytes), the AM type byte, the hidden activity
  // field, and the payload.
  size_t WireBytes() const {
    return 6 + 11 + WideAddressBytes() + 1 + ActivityWireBytes() +
           payload.size();
  }

  // Bytes transferred over the SPI bus between MCU and radio FIFO (no
  // preamble; length byte + MAC header/FCS + AM type + label + payload).
  size_t FifoBytes() const {
    return 1 + 11 + WideAddressBytes() + 1 + ActivityWireBytes() +
           payload.size();
  }
};

}  // namespace quanto

#endif  // QUANTO_SRC_NET_PACKET_H_
