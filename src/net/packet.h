// 802.15.4-style frame carried by the simulated medium, including the
// hidden Quanto activity field.
//
// Section 3.3: "we added a hidden field to the TinyOS Active Message (AM)
// implementation ... When a packet is submitted to the OS for transmission,
// the packet's activity field is set to the CPU's current activity ...
// labels are 16-bit integers representing both the node id and the activity
// id, which is sufficient for networks of up to 256 nodes with 256 distinct
// activity ids."
#ifndef QUANTO_SRC_NET_PACKET_H_
#define QUANTO_SRC_NET_PACKET_H_

#include <cstdint>
#include <vector>

#include "src/core/activity.h"

namespace quanto {

// Broadcast destination.
inline constexpr node_id_t kBroadcastAddr = 0xFF;

struct Packet {
  node_id_t src = 0;
  node_id_t dst = 0;
  uint8_t am_type = 0;      // Active Message dispatch id.
  act_t activity = 0;       // Hidden Quanto label (16 bits on the wire).
  std::vector<uint8_t> payload;

  // Bytes occupied on the air: 802.15.4 synchronisation header + PHY
  // header (6), MAC header + FCS (11), the AM type byte, the hidden
  // 2-byte activity field, and the payload.
  size_t WireBytes() const { return 6 + 11 + 1 + 2 + payload.size(); }

  // Bytes transferred over the SPI bus between MCU and radio FIFO (no
  // preamble; length byte + MAC header/FCS + AM type + label + payload).
  size_t FifoBytes() const { return 1 + 11 + 1 + 2 + payload.size(); }
};

}  // namespace quanto

#endif  // QUANTO_SRC_NET_PACKET_H_
