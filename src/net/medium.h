// The shared 2.4 GHz medium: 802.15.4 transmissions plus foreign
// interference energy.
//
// This is the substitute for the paper's physical radio environment. Radios
// register per channel; a transmission occupies its channel for its
// airtime, is delivered to every other listening radio on the channel at
// completion, and raises start-of-frame notifications at its beginning.
// Clear-channel assessment (the input to low-power listening) reports
// energy from both 802.15.4 transmissions and interference sources such as
// the 802.11 b/g access point of Section 4.3 — which is how channel 17
// "hears" the Wi-Fi network that channel 26 does not.
#ifndef QUANTO_SRC_NET_MEDIUM_H_
#define QUANTO_SRC_NET_MEDIUM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/event_queue.h"
#include "src/util/units.h"

namespace quanto {

// 802.15.4 channels are numbered 11..26 (2.405 + 5*(k-11) MHz centres).
inline constexpr int kFirstZigbeeChannel = 11;
inline constexpr int kLastZigbeeChannel = 26;

// Centre frequency of an 802.15.4 channel in MHz.
constexpr double ZigbeeCentreMhz(int channel) {
  return 2405.0 + 5.0 * (channel - kFirstZigbeeChannel);
}

// Centre frequency of an 802.11 b/g channel in MHz (1..13).
constexpr double WifiCentreMhz(int channel) { return 2407.0 + 5.0 * channel; }

// Callbacks a radio registers with the medium.
class MediumClient {
 public:
  virtual ~MediumClient() = default;
  virtual node_id_t NodeId() const = 0;
  virtual int Channel() const = 0;
  // True when the receive path is powered and listening (able to hear).
  virtual bool Listening() const = 0;
  // Raised at the first bit of a frame on the client's channel.
  virtual void OnFrameStart(node_id_t sender) = 0;
  // Raised at the last bit; the client may begin downloading the frame.
  virtual void OnFrameComplete(const Packet& packet) = 0;
};

// An external energy source the medium consults for CCA (e.g. the Wi-Fi
// interferer). `EnergyOn(channel, now)` returns true when the source
// currently deposits detectable energy on the 802.15.4 channel.
class InterferenceSource {
 public:
  virtual ~InterferenceSource() = default;
  virtual bool EnergyOn(int channel, Tick now) const = 0;
};

class Medium {
 public:
  explicit Medium(EventQueue* queue);

  void Register(MediumClient* client);
  void Unregister(MediumClient* client);

  void AddInterference(InterferenceSource* source);

  // Starts a transmission: occupies `channel` for `airtime`, notifies
  // listening peers of frame start now and frame completion at the end.
  // Returns false (and sends nothing) if the sender collides with an
  // ongoing 802.15.4 transmission on the channel.
  bool BeginTransmit(node_id_t sender, int channel, const Packet& packet,
                     Tick airtime);

  // Clear-channel assessment: energy detected on `channel` right now,
  // from either an in-flight 802.15.4 frame or an interference source.
  bool EnergyDetected(int channel) const;

  // Number of in-flight 802.15.4 transmissions on the channel.
  size_t ActiveTransmissions(int channel) const;

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t collisions() const { return collisions_; }

 private:
  void CompleteTransmit(int channel, const Packet& packet);
  // Clients tuned to `channel` (queried at Register time; radios in this
  // model never retune). Keeps per-packet notification from scanning every
  // client in the network.
  std::vector<MediumClient*>& ChannelClients(int channel);

  EventQueue* queue_;
  std::vector<MediumClient*> clients_;
  std::map<int, std::vector<MediumClient*>> clients_by_channel_;
  std::vector<InterferenceSource*> interference_;
  std::map<int, size_t> busy_count_;  // channel -> active transmissions.
  uint64_t packets_sent_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t collisions_ = 0;
};

}  // namespace quanto

#endif  // QUANTO_SRC_NET_MEDIUM_H_
