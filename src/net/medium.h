// The shared 2.4 GHz medium: 802.15.4 transmissions plus foreign
// interference energy.
//
// This is the substitute for the paper's physical radio environment. Radios
// register per channel; a transmission occupies its channel for its
// airtime, is delivered to every other listening radio on the channel at
// completion, and raises start-of-frame notifications at its beginning.
// Clear-channel assessment (the input to low-power listening) reports
// energy from both 802.15.4 transmissions and interference sources such as
// the 802.11 b/g access point of Section 4.3 — which is how channel 17
// "hears" the Wi-Fi network that channel 26 does not.
//
// Sharded operation: under the ShardedSimulator each shard gets its own
// Medium replica covering the radios of that shard's motes, all connected
// by a MediumFabric. Within a shard, delivery is synchronous exactly as in
// the single-engine mode. Across shards, delivery is a two-phase protocol:
// a successful BeginTransmit *posts* the frame to the fabric's per-shard
// mailbox (lock-free: only the owning shard's thread appends), and the
// fabric *drains* all mailboxes between windows, scheduling the frame onto
// every other shard's engine at post-time + latency. The latency models
// antenna propagation plus receiver turnaround and is the simulator's
// lookahead: it is what guarantees no frame posted inside a window can
// land inside the same window.
//
// The drain itself is parallel, destination-owned work. Per window the
// phase order is: (1) window execution — each source shard appends to its
// own mailbox lane in execution (= time) order; (2) the simulator's
// inter-window drain phase — each DESTINATION shard, on a worker thread,
// k-way-merges the k frozen source lanes in (time, source shard) order
// and schedules the deliveries it is interested in onto its own engine;
// (3) the serial barrier hooks — the fabric's hook merely retires the
// consumed lanes (O(shards) buffer swaps) so the next drain phase can
// release the frames in parallel. The merge order is exactly the order
// the retired global stable_sort produced, so cross-shard delivery — and
// therefore every downstream event sequence number — is identical at any
// thread count, and identical to the retained Config::serial_drain path
// (asserted by tests/fabric_drain_test.cc).
#ifndef QUANTO_SRC_NET_MEDIUM_H_
#define QUANTO_SRC_NET_MEDIUM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/event_queue.h"
#include "src/util/units.h"

namespace quanto {

class MediumFabric;
class ShardedSimulator;  // Full type needed only by medium.cc.

// A frame on the air: one immutable, refcounted copy of the transmitted
// packet shared by every delivery path that needs it — the local
// completion event and, in sharded mode, one closure per destination
// shard. A broadcast fanning out to N shards therefore performs exactly
// one frame allocation at transmit time, however large N is (asserted by
// MediumFabricTest.BroadcastFanOutAllocatesOneFrame).
using SharedFrame = std::shared_ptr<const Packet>;

// 802.15.4 channels are numbered 11..26 (2.405 + 5*(k-11) MHz centres).
inline constexpr int kFirstZigbeeChannel = 11;
inline constexpr int kLastZigbeeChannel = 26;

// Centre frequency of an 802.15.4 channel in MHz.
constexpr double ZigbeeCentreMhz(int channel) {
  return 2405.0 + 5.0 * (channel - kFirstZigbeeChannel);
}

// Centre frequency of an 802.11 b/g channel in MHz (1..13).
constexpr double WifiCentreMhz(int channel) { return 2407.0 + 5.0 * channel; }

// Callbacks a radio registers with the medium.
class MediumClient {
 public:
  virtual ~MediumClient() = default;
  virtual node_id_t NodeId() const = 0;
  virtual int Channel() const = 0;
  // True when the receive path is powered and listening (able to hear).
  virtual bool Listening() const = 0;
  // Raised at the first bit of a frame on the client's channel.
  virtual void OnFrameStart(node_id_t sender) = 0;
  // Raised at the last bit; the client may begin downloading the frame.
  virtual void OnFrameComplete(const Packet& packet) = 0;
};

// An external energy source the medium consults for CCA (e.g. the Wi-Fi
// interferer). `EnergyOn(channel, now)` returns true when the source
// currently deposits detectable energy on the 802.15.4 channel.
class InterferenceSource {
 public:
  virtual ~InterferenceSource() = default;
  virtual bool EnergyOn(int channel, Tick now) const = 0;
};

class Medium {
 public:
  // Single-engine (global) medium: the pre-sharding behaviour, used by
  // every one-queue experiment and test.
  explicit Medium(EventQueue* queue);

  void Register(MediumClient* client);
  void Unregister(MediumClient* client);

  // Bulk-reserve for known network sizes: pre-sizes the client list and
  // `channel`'s per-channel delivery list so registering `clients` radios
  // performs no vector growth (ScaleNetwork calls this per replica before
  // building its motes — at 16k+ motes the repeated reallocation during
  // construction is measurable).
  void ReserveClients(size_t clients, int channel);

  void AddInterference(InterferenceSource* source);

  // Starts a transmission: occupies `channel` for `airtime`, notifies
  // listening peers of frame start now and frame completion at the end.
  // Returns false (and sends nothing) if the sender collides with an
  // ongoing 802.15.4 transmission on the channel. In sharded mode a
  // successful transmit is additionally posted to the fabric for delivery
  // to the other shards' airspace at now + fabric latency.
  bool BeginTransmit(node_id_t sender, int channel, const Packet& packet,
                     Tick airtime);

  // Clear-channel assessment: energy detected on `channel` right now,
  // from an in-flight 802.15.4 frame (local or remote), or an
  // interference source.
  bool EnergyDetected(int channel) const;

  // Number of in-flight 802.15.4 transmissions occupying the channel here
  // (local transmissions plus remote frames currently on the air in this
  // shard's airspace).
  size_t ActiveTransmissions(int channel) const;

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t collisions() const { return collisions_; }
  // Frame objects allocated by BeginTransmit here (one per accepted
  // transmission, shared across every delivery path).
  uint64_t frames_allocated() const { return frames_allocated_; }

 private:
  friend class MediumFabric;

  // Sharded replica: created by MediumFabric only.
  Medium(EventQueue* queue, MediumFabric* fabric, size_t shard);

  void CompleteTransmit(int channel, const Packet& packet);

  // A frame transmitted in another shard reaches this shard's airspace
  // now: occupy the channel for `airtime`, raise frame starts, and at the
  // end deliver it — unless the channel was already occupied here, in
  // which case the arriving frame is dropped as corrupted. Mirrors the
  // local model's earlier-frame-wins semantics (BeginTransmit refuses the
  // later transmission; here the senders were out of each other's
  // carrier-sense reach, so the later frame airs but cannot be decoded).
  void DeliverRemote(const SharedFrame& frame, int channel, Tick airtime);
  void FinishRemote(int channel, const SharedFrame& frame, bool collided);

  // Clients tuned to `channel` (queried at Register time; radios in this
  // model never retune). Keeps per-packet notification from scanning every
  // client in the network.
  std::vector<MediumClient*>& ChannelClients(int channel);

  EventQueue* queue_;
  MediumFabric* fabric_ = nullptr;  // Null in single-engine mode.
  size_t shard_ = 0;
  std::vector<MediumClient*> clients_;
  std::map<int, std::vector<MediumClient*>> clients_by_channel_;
  std::vector<InterferenceSource*> interference_;
  std::map<int, size_t> busy_count_;  // channel -> frames on the air here.
  uint64_t packets_sent_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t collisions_ = 0;
  uint64_t frames_allocated_ = 0;
};

// The cross-shard radio interconnect: one Medium replica per shard plus
// the mailbox/drain machinery. Owns the replicas; registers its drain
// machinery on the simulator at construction — by default a per-shard
// drain task on the parallel inter-window phase plus a small serial
// retirement hook, or (Config::serial_drain) the legacy single-threaded
// gather+sort drain as a barrier hook.
class MediumFabric {
 public:
  struct Config {
    // Cross-shard visibility latency (propagation + receiver turnaround).
    // Clamped up to the simulator's lookahead — the conservative-lookahead
    // invariant requires latency >= window width.
    Tick latency = Microseconds(512);
    // Use the pre-PR8 single-threaded gather + global stable_sort drain on
    // the coordinator instead of the parallel per-destination lane merge.
    // Kept as the differential-proof baseline: both paths must produce
    // byte-identical merged traces and identical wakeup counters.
    bool serial_drain = false;
  };

  MediumFabric(ShardedSimulator* sim, const Config& config);
  explicit MediumFabric(ShardedSimulator* sim)
      : MediumFabric(sim, Config()) {}

  MediumFabric(const MediumFabric&) = delete;
  MediumFabric& operator=(const MediumFabric&) = delete;

  size_t shard_count() const { return media_.size(); }
  Medium& medium(size_t shard) { return *media_[shard]; }
  Tick latency() const { return config_.latency; }

  // Network-wide statistics, aggregated over the shard replicas.
  uint64_t packets_sent() const;
  uint64_t packets_delivered() const;
  uint64_t collisions() const;
  // Posts accepted into the mailbox lanes. Like the wakeup counters below
  // this is kept in per-shard slots written only by the slot's owner and
  // summed on read, so the parallel drain never mutates shared counters.
  uint64_t cross_posts() const;
  // Frame allocations across all replicas: one per accepted transmission,
  // independent of how many shards each frame fans out to.
  uint64_t frames_allocated() const;

  // (post, destination shard) pairs the drain never scheduled because the
  // shard-interest bitmap showed no client on the post's channel there —
  // wakeups a bitmap-less drain would have had to consider one by one.
  // Identical on the serial and parallel paths by construction.
  uint64_t skipped_wakeups() const;
  // (post, destination shard) pairs actually scheduled.
  uint64_t scheduled_wakeups() const;
  // Whole source lanes a destination's drain task dismissed with one
  // channel-mask AND instead of a per-post scan (parallel path only; the
  // per-post skips are still accounted in skipped_wakeups so the totals
  // match the serial path exactly).
  uint64_t lanes_skipped() const;

  bool serial_drain() const { return config_.serial_drain; }

  // Per-window drain cost in microseconds: on the parallel path the MAX
  // over the per-destination drain tasks of that window (the phase's
  // critical path); on the serial path the whole Drain call. Off by
  // default — one sample per window.
  void EnableDrainProfiling(bool on) { profile_drain_ = on; }
  const std::vector<uint32_t>& drain_us_samples() const {
    return drain_us_samples_;
  }

  // True when any client in shard `shard` is tuned to `channel`
  // (bitmap-backed; exposed for tests).
  bool ShardInterested(size_t shard, int channel) const;

 private:
  friend class Medium;

  // Per-channel bitmap of shards with at least one registered client on
  // that channel, plus the per-shard client counts that maintain it across
  // Unregister. Radios never retune in this model, so the bitmap only
  // changes at Register/Unregister time and the drain loop iterates set
  // bits instead of probing every replica's channel map per post.
  struct ChannelInterest {
    std::vector<uint64_t> bits;      // One bit per shard.
    std::vector<uint32_t> counts;    // Clients per shard on this channel.
  };

  void NoteClientRegistered(size_t shard, int channel);
  void NoteClientUnregistered(size_t shard, int channel);

  // Interest lookup for the drain hot path: channels are small ints fixed
  // at registration time, so the per-post `std::map` probe is hoisted to
  // a dense pointer table indexed by channel (map nodes are address-
  // stable). Channels outside [0, kMaxDenseChannel) — none in practice —
  // fall back to the map.
  static constexpr int kMaxDenseChannel = 4096;
  const ChannelInterest* InterestFor(int channel) const {
    if (channel >= 0 &&
        static_cast<size_t>(channel) < interest_by_channel_.size()) {
      return interest_by_channel_[channel];
    }
    auto it = interest_.find(channel);
    return it != interest_.end() ? &it->second : nullptr;
  }

  struct CrossPost {
    Tick time;         // Transmit start time in the source shard.
    size_t src_shard;
    int channel;
    Tick airtime;
    SharedFrame frame;  // Shared with the source shard's local delivery.
  };

  // Per-destination drain bookkeeping, one cache line per shard: written
  // only by the owning shard's drain task (or, on the serial path, by the
  // coordinator — which is then the only writer anyway) and summed by the
  // public accessors on read.
  struct alignas(64) ShardDrainStats {
    uint64_t cross_posts = 0;
    uint64_t scheduled = 0;
    uint64_t skipped = 0;
    uint64_t lanes_skipped = 0;
    uint32_t last_drain_us = 0;       // This window's DrainShard wall time.
    std::vector<uint32_t> cursor;     // k-way merge scratch, one per lane.
  };

  // Called by a shard's Medium during its window. Only the owning shard's
  // worker touches posts_[src_shard] (and its channel mask), so no
  // synchronization is needed; the window barrier publishes the writes to
  // the draining threads. The frame is the transmit-time allocation —
  // posting and draining only bump its refcount.
  void Post(size_t src_shard, int channel, const SharedFrame& frame,
            Tick airtime, Tick now);

  // Parallel drain task for destination shard `dst`: releases the frames
  // retired at the previous barrier, then k-way-merges the frozen source
  // lanes in (time, src_shard, post order) — reading every lane, writing
  // only dst's engine and stats slot.
  void DrainShard(size_t dst, Tick barrier_now);

  // Serial hook behind the drain phase: swaps each consumed lane with its
  // (emptied) retirement buffer and counts the posts — O(shards) pointer
  // swaps, the only drain work left on the coordinator.
  void RetireWindowPosts(Tick window_end);

  // Legacy single-threaded drain (Config::serial_drain): gathers all
  // lanes, stable_sorts on (time, src_shard) and schedules every delivery
  // from the coordinator. Retained as the differential baseline.
  void Drain(Tick barrier_now);

  Config config_;
  std::vector<std::unique_ptr<Medium>> media_;
  std::vector<EventQueue*> queues_;
  std::vector<std::vector<CrossPost>> posts_;    // Indexed by source shard.
  // Last window's consumed lanes, cleared (frames released) by each
  // shard's next drain task instead of on the serial hook; capacity
  // recycles back into posts_ via the swap in RetireWindowPosts.
  std::vector<std::vector<CrossPost>> retired_;
  std::vector<CrossPost> scratch_;               // Serial-drain merge buffer.
  std::map<int, ChannelInterest> interest_;      // Keyed by channel.
  std::vector<const ChannelInterest*> interest_by_channel_;  // Dense table.
  // OR of (1 << (channel & 63)) over the posts in each source lane /
  // over the channels each destination shard has clients on. A zero AND
  // proves the destination listens on no channel in the lane (mod-64
  // aliasing can only force the per-post path, never skip wrongly), so a
  // drain task dismisses the whole lane in one compare.
  std::vector<uint64_t> lane_channel_mask_;      // Indexed by source shard.
  std::vector<uint64_t> shard_channel_mask_;     // Indexed by destination.
  std::vector<ShardDrainStats> stats_;           // Indexed by shard.
  bool profile_drain_ = false;
  std::vector<uint32_t> drain_us_samples_;
};

}  // namespace quanto

#endif  // QUANTO_SRC_NET_MEDIUM_H_
