#include "src/net/wifi_interferer.h"

#include <cmath>

namespace quanto {

WifiInterferer::WifiInterferer(EventQueue* queue)
    : WifiInterferer(queue, Config()) {}

WifiInterferer::WifiInterferer(EventQueue* queue, const Config& config)
    : queue_(queue), config_(config), rng_(config.seed) {}

bool WifiInterferer::Overlaps(int zigbee_channel) const {
  double zigbee_centre = ZigbeeCentreMhz(zigbee_channel);
  double wifi_centre = WifiCentreMhz(config_.wifi_channel);
  return std::abs(zigbee_centre - wifi_centre) <= config_.half_bandwidth_mhz;
}

void WifiInterferer::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  bursting_ = false;
  ScheduleTransition();
}

void WifiInterferer::Stop() {
  running_ = false;
  bursting_ = false;
  if (transition_ != EventQueue::kInvalidEvent) {
    queue_->Cancel(transition_);
    transition_ = EventQueue::kInvalidEvent;
  }
}

void WifiInterferer::ScheduleTransition() {
  Tick mean = bursting_ ? config_.mean_busy : config_.mean_idle;
  Tick delay = static_cast<Tick>(
      rng_.Exponential(static_cast<double>(mean)));
  if (delay == 0) {
    delay = 1;
  }
  transition_ = queue_->ScheduleAfter(delay, [this] {
    transition_ = EventQueue::kInvalidEvent;
    if (!running_) {
      return;
    }
    bursting_ = !bursting_;
    if (bursting_) {
      ++bursts_;
    }
    ScheduleTransition();
  });
}

bool WifiInterferer::EnergyOn(int channel, Tick now) const {
  (void)now;  // The on/off state is advanced by the event queue itself.
  return running_ && bursting_ && Overlaps(channel);
}

double WifiInterferer::BusyFraction() const {
  double busy = static_cast<double>(config_.mean_busy);
  double idle = static_cast<double>(config_.mean_idle);
  return busy / (busy + idle);
}

}  // namespace quanto
