// A stochastic 802.11 b/g access point sharing the 2.4 GHz band with the
// 802.15.4 network (Section 4.3's interference case study).
//
// The paper placed a mote 10 cm from an AP on 802.11 channel 6
// (2.437 GHz centre, ~22 MHz wide) and observed that a low-power-listening
// node on 802.15.4 channel 17 (2.453 GHz — inside the Wi-Fi channel's
// skirt) falsely detected channel activity on 17.8% of its wake-ups, while
// a node on channel 26 (2.480 GHz — clear of it) detected none.
//
// The interferer is an on/off renewal process: exponentially distributed
// busy bursts (frame clusters) separated by exponential idle gaps. Its
// energy is visible on an 802.15.4 channel iff the channel's centre lies
// within the Wi-Fi channel's occupied bandwidth — reproducing the
// channel-17-vs-26 asymmetry with a mechanism, not a hardcoded flag.
#ifndef QUANTO_SRC_NET_WIFI_INTERFERER_H_
#define QUANTO_SRC_NET_WIFI_INTERFERER_H_

#include "src/net/medium.h"
#include "src/sim/event_queue.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace quanto {

class WifiInterferer : public InterferenceSource {
 public:
  struct Config {
    int wifi_channel = 6;
    // Occupied bandwidth of an 802.11b DSSS transmission; energy falls off
    // sharply beyond +/- 11 MHz of the centre.
    double half_bandwidth_mhz = 11.0;
    // Busy/idle process. Defaults calibrated so that a CCA sample at a
    // random instant sees energy with probability ~= busy/(busy+idle) plus
    // edge effects, landing near the paper's 17.8% false-positive rate.
    Tick mean_busy = Milliseconds(18);
    Tick mean_idle = Milliseconds(90);
    uint64_t seed = 0x80211;
  };

  explicit WifiInterferer(EventQueue* queue);
  WifiInterferer(EventQueue* queue, const Config& config);

  // Starts the on/off process (idle first).
  void Start();
  void Stop();

  // InterferenceSource.
  bool EnergyOn(int channel, Tick now) const override;

  // Whether this interferer's spectrum covers the given 802.15.4 channel.
  bool Overlaps(int zigbee_channel) const;

  bool bursting() const { return bursting_; }
  double BusyFraction() const;  // Long-run expected busy fraction.
  uint64_t bursts() const { return bursts_; }

 private:
  void ScheduleTransition();

  EventQueue* queue_;
  Config config_;
  Rng rng_;
  bool running_ = false;
  bool bursting_ = false;
  EventQueue::EventId transition_ = EventQueue::kInvalidEvent;
  uint64_t bursts_ = 0;
};

}  // namespace quanto

#endif  // QUANTO_SRC_NET_WIFI_INTERFERER_H_
