#include "src/net/medium.h"

#include <algorithm>

#include "src/sim/sharded_sim.h"

namespace quanto {

Medium::Medium(EventQueue* queue) : queue_(queue) {}

Medium::Medium(EventQueue* queue, MediumFabric* fabric, size_t shard)
    : queue_(queue), fabric_(fabric), shard_(shard) {}

void Medium::Register(MediumClient* client) {
  clients_.push_back(client);
  clients_by_channel_[client->Channel()].push_back(client);
  if (fabric_ != nullptr) {
    fabric_->NoteClientRegistered(shard_, client->Channel());
  }
}

void Medium::ReserveClients(size_t clients, int channel) {
  clients_.reserve(clients_.size() + clients);
  std::vector<MediumClient*>& on_channel = ChannelClients(channel);
  on_channel.reserve(on_channel.size() + clients);
}

void Medium::Unregister(MediumClient* client) {
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
  for (auto& [channel, clients] : clients_by_channel_) {
    size_t before = clients.size();
    clients.erase(std::remove(clients.begin(), clients.end(), client),
                  clients.end());
    if (fabric_ != nullptr && clients.size() != before) {
      fabric_->NoteClientUnregistered(shard_, channel);
    }
  }
}

std::vector<MediumClient*>& Medium::ChannelClients(int channel) {
  return clients_by_channel_[channel];
}

void Medium::AddInterference(InterferenceSource* source) {
  interference_.push_back(source);
}

size_t Medium::ActiveTransmissions(int channel) const {
  auto it = busy_count_.find(channel);
  return it != busy_count_.end() ? it->second : 0;
}

bool Medium::EnergyDetected(int channel) const {
  if (ActiveTransmissions(channel) > 0) {
    return true;
  }
  Tick now = queue_->Now();
  for (const InterferenceSource* source : interference_) {
    if (source->EnergyOn(channel, now)) {
      return true;
    }
  }
  return false;
}

bool Medium::BeginTransmit(node_id_t sender, int channel, const Packet& packet,
                           Tick airtime) {
  if (ActiveTransmissions(channel) > 0) {
    // Two simultaneous 802.15.4 frames on one channel: both are lost. The
    // CSMA layer above avoids this in practice; count it and drop.
    ++collisions_;
    return false;
  }
  ++busy_count_[channel];
  ++packets_sent_;
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() != sender && client->Listening()) {
      client->OnFrameStart(sender);
    }
  }
  // The one frame allocation for this transmission: the local completion
  // event and every cross-shard delivery closure share it by refcount.
  SharedFrame frame = std::make_shared<const Packet>(packet);
  ++frames_allocated_;
  queue_->ScheduleAfter(airtime, [this, channel, frame] {
    CompleteTransmit(channel, *frame);
  });
  if (fabric_ != nullptr) {
    fabric_->Post(shard_, channel, frame, airtime, queue_->Now());
  }
  return true;
}

void Medium::CompleteTransmit(int channel, const Packet& packet) {
  auto it = busy_count_.find(channel);
  if (it != busy_count_.end() && it->second > 0) {
    --it->second;
  }
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() == packet.src || !client->Listening()) {
      continue;
    }
    if (packet.dst != kBroadcastAddr && packet.dst != client->NodeId()) {
      // Radios hear unicast frames for others too (address filtering
      // happens in the radio), so deliver and let the client filter.
    }
    client->OnFrameComplete(packet);
    ++packets_delivered_;
  }
}

void Medium::DeliverRemote(const SharedFrame& frame, int channel,
                           Tick airtime) {
  // A remote frame arriving while this shard's channel is already occupied
  // is corrupted for our listeners (the senders were beyond each other's
  // carrier-sense reach, so the later one never backed off); the earlier
  // frame still delivers, matching the local model where the later
  // transmission simply never airs. The corrupted frame still deposits
  // energy (CCA sees it) for its whole airtime.
  bool collided = ActiveTransmissions(channel) > 0;
  if (collided) {
    ++collisions_;
  }
  ++busy_count_[channel];
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() != frame->src && client->Listening()) {
      client->OnFrameStart(frame->src);
    }
  }
  queue_->ScheduleAfter(airtime, [this, channel, frame, collided] {
    FinishRemote(channel, frame, collided);
  });
}

void Medium::FinishRemote(int channel, const SharedFrame& frame,
                          bool collided) {
  auto it = busy_count_.find(channel);
  if (it != busy_count_.end() && it->second > 0) {
    --it->second;
  }
  if (collided) {
    return;
  }
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() == frame->src || !client->Listening()) {
      continue;
    }
    client->OnFrameComplete(*frame);
    ++packets_delivered_;
  }
}

// --- MediumFabric -------------------------------------------------------------

MediumFabric::MediumFabric(ShardedSimulator* sim, const Config& config)
    : config_(config) {
  // Conservative lookahead: a frame posted inside a window must never land
  // inside the same window, so the cross-shard latency can never be
  // shorter than the window width.
  if (config_.latency < sim->lookahead()) {
    config_.latency = sim->lookahead();
  }
  size_t shards = sim->shard_count();
  media_.reserve(shards);
  queues_.reserve(shards);
  posts_.resize(shards);
  for (size_t s = 0; s < shards; ++s) {
    queues_.push_back(&sim->queue(s));
    media_.push_back(
        std::unique_ptr<Medium>(new Medium(queues_[s], this, s)));
  }
  sim->AddBarrierHook([this](Tick window_end) { Drain(window_end); });
}

void MediumFabric::Post(size_t src_shard, int channel,
                        const SharedFrame& frame, Tick airtime, Tick now) {
  // Mailboxes are thread-confined (only the owning shard's worker writes
  // posts_[src_shard]); shared counters are updated at drain time, on the
  // coordinating thread, so Post stays synchronization-free.
  posts_[src_shard].push_back(
      CrossPost{now, src_shard, channel, airtime, frame});
}

void MediumFabric::Drain(Tick barrier_now) {
  scratch_.clear();
  for (std::vector<CrossPost>& shard_posts : posts_) {
    cross_posts_ += shard_posts.size();
    scratch_.insert(scratch_.end(), shard_posts.begin(), shard_posts.end());
    shard_posts.clear();
  }
  if (scratch_.empty()) {
    return;
  }
  // Per-shard lists are already time-ordered (posts happen in execution
  // order); a stable sort on (time, source shard) therefore yields one
  // deterministic total order, so destination engines hand out identical
  // sequence numbers at every thread count.
  std::stable_sort(scratch_.begin(), scratch_.end(),
                   [](const CrossPost& a, const CrossPost& b) {
                     if (a.time != b.time) {
                       return a.time < b.time;
                     }
                     return a.src_shard < b.src_shard;
                   });
  for (const CrossPost& post : scratch_) {
    Tick deliver = post.time + config_.latency;
    if (deliver <= barrier_now) {
      // A post at a window's first tick with latency == window width lands
      // exactly on the barrier; push it just past it (deterministic: the
      // barrier time does not depend on the thread count).
      deliver = barrier_now + 1;
    }
    // Shard-interest bitmap: only shards with a client on the post's
    // channel are visited at all, in ascending shard order (the same
    // order the probe-every-shard loop produced). Sparse channels skip
    // the whole fan-out; the skipped count is the saving made observable.
    auto it = interest_.find(post.channel);
    size_t visited = 0;
    if (it != interest_.end()) {
      const std::vector<uint64_t>& bits = it->second.bits;
      for (size_t word = 0; word < bits.size(); ++word) {
        uint64_t w = bits[word];
        while (w != 0) {
          size_t dst = word * 64 + static_cast<size_t>(__builtin_ctzll(w));
          w &= w - 1;
          if (dst == post.src_shard) {
            continue;
          }
          ++visited;
          Medium* medium = media_[dst].get();
          // Refcount bump only: every destination shard shares the
          // immutable frame allocated at transmit time, so a broadcast
          // fanning out to N shards costs zero packet copies here. The
          // closure (pointer + shared_ptr + channel + airtime) stays
          // within the event queue's inline callback buffer — no heap
          // allocation per destination.
          SharedFrame frame = post.frame;
          int channel = post.channel;
          Tick airtime = post.airtime;
          queues_[dst]->Schedule(deliver, [medium, frame, channel, airtime] {
            medium->DeliverRemote(frame, channel, airtime);
          });
        }
      }
    }
    scheduled_wakeups_ += visited;
    skipped_wakeups_ += (media_.size() - 1) - visited;
  }
}

void MediumFabric::NoteClientRegistered(size_t shard, int channel) {
  ChannelInterest& interest = interest_[channel];
  if (interest.counts.empty()) {
    interest.counts.resize(media_.size(), 0);
    interest.bits.resize((media_.size() + 63) / 64, 0);
  }
  if (interest.counts[shard]++ == 0) {
    interest.bits[shard / 64] |= uint64_t{1} << (shard % 64);
  }
}

void MediumFabric::NoteClientUnregistered(size_t shard, int channel) {
  auto it = interest_.find(channel);
  if (it == interest_.end() || it->second.counts[shard] == 0) {
    return;
  }
  if (--it->second.counts[shard] == 0) {
    it->second.bits[shard / 64] &= ~(uint64_t{1} << (shard % 64));
  }
}

bool MediumFabric::ShardInterested(size_t shard, int channel) const {
  auto it = interest_.find(channel);
  return it != interest_.end() &&
         (it->second.bits[shard / 64] >> (shard % 64)) & 1;
}

uint64_t MediumFabric::packets_sent() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->packets_sent();
  }
  return total;
}

uint64_t MediumFabric::packets_delivered() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->packets_delivered();
  }
  return total;
}

uint64_t MediumFabric::collisions() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->collisions();
  }
  return total;
}

uint64_t MediumFabric::frames_allocated() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->frames_allocated();
  }
  return total;
}

}  // namespace quanto
