#include "src/net/medium.h"

#include <algorithm>
#include <chrono>

#include "src/sim/sharded_sim.h"

namespace quanto {

Medium::Medium(EventQueue* queue) : queue_(queue) {}

Medium::Medium(EventQueue* queue, MediumFabric* fabric, size_t shard)
    : queue_(queue), fabric_(fabric), shard_(shard) {}

void Medium::Register(MediumClient* client) {
  clients_.push_back(client);
  clients_by_channel_[client->Channel()].push_back(client);
  if (fabric_ != nullptr) {
    fabric_->NoteClientRegistered(shard_, client->Channel());
  }
}

void Medium::ReserveClients(size_t clients, int channel) {
  clients_.reserve(clients_.size() + clients);
  std::vector<MediumClient*>& on_channel = ChannelClients(channel);
  on_channel.reserve(on_channel.size() + clients);
}

void Medium::Unregister(MediumClient* client) {
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
  for (auto& [channel, clients] : clients_by_channel_) {
    size_t before = clients.size();
    clients.erase(std::remove(clients.begin(), clients.end(), client),
                  clients.end());
    if (fabric_ != nullptr && clients.size() != before) {
      fabric_->NoteClientUnregistered(shard_, channel);
    }
  }
}

std::vector<MediumClient*>& Medium::ChannelClients(int channel) {
  return clients_by_channel_[channel];
}

void Medium::AddInterference(InterferenceSource* source) {
  interference_.push_back(source);
}

size_t Medium::ActiveTransmissions(int channel) const {
  auto it = busy_count_.find(channel);
  return it != busy_count_.end() ? it->second : 0;
}

bool Medium::EnergyDetected(int channel) const {
  if (ActiveTransmissions(channel) > 0) {
    return true;
  }
  Tick now = queue_->Now();
  for (const InterferenceSource* source : interference_) {
    if (source->EnergyOn(channel, now)) {
      return true;
    }
  }
  return false;
}

bool Medium::BeginTransmit(node_id_t sender, int channel, const Packet& packet,
                           Tick airtime) {
  if (ActiveTransmissions(channel) > 0) {
    // Two simultaneous 802.15.4 frames on one channel: both are lost. The
    // CSMA layer above avoids this in practice; count it and drop.
    ++collisions_;
    return false;
  }
  ++busy_count_[channel];
  ++packets_sent_;
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() != sender && client->Listening()) {
      client->OnFrameStart(sender);
    }
  }
  // The one frame allocation for this transmission: the local completion
  // event and every cross-shard delivery closure share it by refcount.
  SharedFrame frame = std::make_shared<const Packet>(packet);
  ++frames_allocated_;
  queue_->ScheduleAfter(airtime, [this, channel, frame] {
    CompleteTransmit(channel, *frame);
  });
  if (fabric_ != nullptr) {
    fabric_->Post(shard_, channel, frame, airtime, queue_->Now());
  }
  return true;
}

void Medium::CompleteTransmit(int channel, const Packet& packet) {
  auto it = busy_count_.find(channel);
  if (it != busy_count_.end() && it->second > 0) {
    --it->second;
  }
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() == packet.src || !client->Listening()) {
      continue;
    }
    if (packet.dst != kBroadcastAddr && packet.dst != client->NodeId()) {
      // Radios hear unicast frames for others too (address filtering
      // happens in the radio), so deliver and let the client filter.
    }
    client->OnFrameComplete(packet);
    ++packets_delivered_;
  }
}

void Medium::DeliverRemote(const SharedFrame& frame, int channel,
                           Tick airtime) {
  // A remote frame arriving while this shard's channel is already occupied
  // is corrupted for our listeners (the senders were beyond each other's
  // carrier-sense reach, so the later one never backed off); the earlier
  // frame still delivers, matching the local model where the later
  // transmission simply never airs. The corrupted frame still deposits
  // energy (CCA sees it) for its whole airtime.
  bool collided = ActiveTransmissions(channel) > 0;
  if (collided) {
    ++collisions_;
  }
  ++busy_count_[channel];
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() != frame->src && client->Listening()) {
      client->OnFrameStart(frame->src);
    }
  }
  queue_->ScheduleAfter(airtime, [this, channel, frame, collided] {
    FinishRemote(channel, frame, collided);
  });
}

void Medium::FinishRemote(int channel, const SharedFrame& frame,
                          bool collided) {
  auto it = busy_count_.find(channel);
  if (it != busy_count_.end() && it->second > 0) {
    --it->second;
  }
  if (collided) {
    return;
  }
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() == frame->src || !client->Listening()) {
      continue;
    }
    client->OnFrameComplete(*frame);
    ++packets_delivered_;
  }
}

// --- MediumFabric -------------------------------------------------------------

MediumFabric::MediumFabric(ShardedSimulator* sim, const Config& config)
    : config_(config) {
  // Conservative lookahead: a frame posted inside a window must never land
  // inside the same window, so the cross-shard latency can never be
  // shorter than the window width.
  if (config_.latency < sim->lookahead()) {
    config_.latency = sim->lookahead();
  }
  size_t shards = sim->shard_count();
  media_.reserve(shards);
  queues_.reserve(shards);
  posts_.resize(shards);
  retired_.resize(shards);
  lane_channel_mask_.assign(shards, 0);
  shard_channel_mask_.assign(shards, 0);
  stats_.resize(shards);
  for (size_t s = 0; s < shards; ++s) {
    queues_.push_back(&sim->queue(s));
    media_.push_back(
        std::unique_ptr<Medium>(new Medium(queues_[s], this, s)));
  }
  if (config_.serial_drain) {
    sim->AddBarrierHook([this](Tick window_end) { Drain(window_end); });
  } else {
    sim->AddShardDrainTask([this](size_t shard, Tick window_end) {
      DrainShard(shard, window_end);
    });
    // Registered here, at construction, so the retirement hook keeps the
    // slot the serial drain used to occupy — everything callers register
    // afterwards (charge flushes, logger handoffs) still runs after the
    // fabric's barrier work, exactly as before.
    sim->AddBarrierHook(
        [this](Tick window_end) { RetireWindowPosts(window_end); });
  }
}

void MediumFabric::Post(size_t src_shard, int channel,
                        const SharedFrame& frame, Tick airtime, Tick now) {
  // Mailboxes are thread-confined (only the owning shard's worker writes
  // posts_[src_shard] and its lane mask); counters are kept in per-shard
  // slots owned by the drain side, so Post stays synchronization-free.
  posts_[src_shard].push_back(
      CrossPost{now, src_shard, channel, airtime, frame});
  lane_channel_mask_[src_shard] |= uint64_t{1} << (channel & 63);
}

void MediumFabric::DrainShard(size_t dst, Tick barrier_now) {
  std::chrono::steady_clock::time_point t0;
  if (profile_drain_) {
    t0 = std::chrono::steady_clock::now();
  }
  ShardDrainStats& stats = stats_[dst];
  // Release the frames this shard's lane carried last window. Deferred
  // from the retirement hook to here so the shared_ptr releases (and any
  // final Packet destructions) run on the workers, not the coordinator.
  retired_[dst].clear();

  size_t shards = posts_.size();
  std::vector<uint32_t>& cursor = stats.cursor;
  cursor.assign(shards, 0);
  uint64_t dst_mask = shard_channel_mask_[dst];
  size_t remaining = 0;
  for (size_t src = 0; src < shards; ++src) {
    const std::vector<CrossPost>& lane = posts_[src];
    if (src == dst || lane.empty()) {
      cursor[src] = static_cast<uint32_t>(lane.size());
      continue;
    }
    if ((lane_channel_mask_[src] & dst_mask) == 0) {
      // No channel posted in this lane can be one we listen on (a zero
      // AND is exact; mod-64 aliasing only ever forces the per-post path
      // below). One compare dismisses the lane — but the posts still
      // count as skipped wakeups, keeping the totals identical to the
      // serial path's per-post accounting.
      stats.skipped += lane.size();
      ++stats.lanes_skipped;
      cursor[src] = static_cast<uint32_t>(lane.size());
      continue;
    }
    remaining += lane.size();
  }

  // K-way merge over the participating lanes in (time, src_shard, post
  // order): each lane is already time-sorted, and the ascending-src scan
  // with a strict `<` makes the lowest source shard win time ties — the
  // exact subsequence, restricted to this destination, of the global
  // stable_sort order the serial drain produces. Same per-queue Schedule
  // order, same sequence numbers, byte-identical traces.
  while (remaining > 0) {
    size_t best = shards;
    Tick best_time = 0;
    for (size_t src = 0; src < shards; ++src) {
      if (cursor[src] >= posts_[src].size()) {
        continue;
      }
      Tick t = posts_[src][cursor[src]].time;
      if (best == shards || t < best_time) {
        best = src;
        best_time = t;
      }
    }
    const CrossPost& post = posts_[best][cursor[best]++];
    --remaining;
    Tick deliver = post.time + config_.latency;
    if (deliver <= barrier_now) {
      // A post at a window's first tick with latency == window width lands
      // exactly on the barrier; push it just past it (deterministic: the
      // barrier time does not depend on the thread count).
      deliver = barrier_now + 1;
    }
    const ChannelInterest* interest = InterestFor(post.channel);
    bool interested =
        interest != nullptr &&
        ((interest->bits[dst / 64] >> (dst % 64)) & 1) != 0;
    if (interested) {
      Medium* medium = media_[dst].get();
      // Refcount bump only: every destination shard shares the immutable
      // frame allocated at transmit time, so a broadcast fanning out to N
      // shards costs zero packet copies here. The closure (pointer +
      // shared_ptr + channel + airtime) stays within the event queue's
      // inline callback buffer — no heap allocation per destination.
      SharedFrame frame = post.frame;
      int channel = post.channel;
      Tick airtime = post.airtime;
      queues_[dst]->Schedule(deliver, [medium, frame, channel, airtime] {
        medium->DeliverRemote(frame, channel, airtime);
      });
      ++stats.scheduled;
    } else {
      ++stats.skipped;
    }
  }

  if (profile_drain_) {
    stats.last_drain_us = static_cast<uint32_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
}

void MediumFabric::RetireWindowPosts(Tick /*window_end*/) {
  // The whole serial residue of the drain: count and retire each consumed
  // lane (the drain tasks left retired_ empty with capacity, so the swap
  // recycles buffers both ways) and reset the lane masks for the next
  // window. No sorting, no scheduling, no frame releases.
  for (size_t s = 0; s < posts_.size(); ++s) {
    stats_[s].cross_posts += posts_[s].size();
    posts_[s].swap(retired_[s]);
    lane_channel_mask_[s] = 0;
  }
  if (profile_drain_) {
    uint32_t max_us = 0;
    for (const ShardDrainStats& stats : stats_) {
      max_us = std::max(max_us, stats.last_drain_us);
    }
    drain_us_samples_.push_back(max_us);
  }
}

void MediumFabric::Drain(Tick barrier_now) {
  std::chrono::steady_clock::time_point t0;
  if (profile_drain_) {
    t0 = std::chrono::steady_clock::now();
  }
  scratch_.clear();
  for (size_t src = 0; src < posts_.size(); ++src) {
    std::vector<CrossPost>& shard_posts = posts_[src];
    stats_[src].cross_posts += shard_posts.size();
    scratch_.insert(scratch_.end(), shard_posts.begin(), shard_posts.end());
    shard_posts.clear();
    lane_channel_mask_[src] = 0;
  }
  if (scratch_.empty()) {
    if (profile_drain_) {
      drain_us_samples_.push_back(0);
    }
    return;
  }
  // Per-shard lists are already time-ordered (posts happen in execution
  // order); a stable sort on (time, source shard) therefore yields one
  // deterministic total order, so destination engines hand out identical
  // sequence numbers at every thread count.
  std::stable_sort(scratch_.begin(), scratch_.end(),
                   [](const CrossPost& a, const CrossPost& b) {
                     if (a.time != b.time) {
                       return a.time < b.time;
                     }
                     return a.src_shard < b.src_shard;
                   });
  for (const CrossPost& post : scratch_) {
    Tick deliver = post.time + config_.latency;
    if (deliver <= barrier_now) {
      // A post at a window's first tick with latency == window width lands
      // exactly on the barrier; push it just past it (deterministic: the
      // barrier time does not depend on the thread count).
      deliver = barrier_now + 1;
    }
    // Shard-interest bitmap: only shards with a client on the post's
    // channel are visited at all, in ascending shard order (the same
    // order the probe-every-shard loop produced). Sparse channels skip
    // the whole fan-out; the skipped count is the saving made observable.
    const ChannelInterest* interest = InterestFor(post.channel);
    size_t visited = 0;
    if (interest != nullptr) {
      const std::vector<uint64_t>& bits = interest->bits;
      for (size_t word = 0; word < bits.size(); ++word) {
        uint64_t w = bits[word];
        while (w != 0) {
          size_t dst = word * 64 + static_cast<size_t>(__builtin_ctzll(w));
          w &= w - 1;
          if (dst == post.src_shard) {
            continue;
          }
          ++visited;
          Medium* medium = media_[dst].get();
          // Refcount bump only — see DrainShard.
          SharedFrame frame = post.frame;
          int channel = post.channel;
          Tick airtime = post.airtime;
          queues_[dst]->Schedule(deliver, [medium, frame, channel, airtime] {
            medium->DeliverRemote(frame, channel, airtime);
          });
          ++stats_[dst].scheduled;
        }
      }
    }
    stats_[post.src_shard].skipped += (media_.size() - 1) - visited;
  }
  if (profile_drain_) {
    drain_us_samples_.push_back(static_cast<uint32_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
}

void MediumFabric::NoteClientRegistered(size_t shard, int channel) {
  ChannelInterest& interest = interest_[channel];
  if (interest.counts.empty()) {
    interest.counts.resize(media_.size(), 0);
    interest.bits.resize((media_.size() + 63) / 64, 0);
  }
  if (interest.counts[shard]++ == 0) {
    interest.bits[shard / 64] |= uint64_t{1} << (shard % 64);
  }
  shard_channel_mask_[shard] |= uint64_t{1} << (channel & 63);
  if (channel >= 0 && channel < kMaxDenseChannel) {
    // Map nodes are address-stable, so the dense table can cache the
    // pointer for the drain hot path. The entry persists even if every
    // client later unregisters — its bits are then all zero, which the
    // per-post interest check handles.
    if (interest_by_channel_.size() <= static_cast<size_t>(channel)) {
      interest_by_channel_.resize(static_cast<size_t>(channel) + 1, nullptr);
    }
    interest_by_channel_[static_cast<size_t>(channel)] = &interest;
  }
}

void MediumFabric::NoteClientUnregistered(size_t shard, int channel) {
  auto it = interest_.find(channel);
  if (it == interest_.end() || it->second.counts[shard] == 0) {
    return;
  }
  if (--it->second.counts[shard] == 0) {
    it->second.bits[shard / 64] &= ~(uint64_t{1} << (shard % 64));
    // Rebuild the shard's channel mask exactly (another channel may alias
    // the departing one mod 64). Unregister-to-zero is rare — teardown or
    // tests — so the O(channels) rescan is fine.
    uint64_t mask = 0;
    for (const auto& [other_channel, interest] : interest_) {
      if (interest.counts[shard] > 0) {
        mask |= uint64_t{1} << (other_channel & 63);
      }
    }
    shard_channel_mask_[shard] = mask;
  }
}

bool MediumFabric::ShardInterested(size_t shard, int channel) const {
  const ChannelInterest* interest = InterestFor(channel);
  return interest != nullptr &&
         ((interest->bits[shard / 64] >> (shard % 64)) & 1) != 0;
}

uint64_t MediumFabric::packets_sent() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->packets_sent();
  }
  return total;
}

uint64_t MediumFabric::packets_delivered() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->packets_delivered();
  }
  return total;
}

uint64_t MediumFabric::collisions() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->collisions();
  }
  return total;
}

uint64_t MediumFabric::frames_allocated() const {
  uint64_t total = 0;
  for (const auto& m : media_) {
    total += m->frames_allocated();
  }
  return total;
}

uint64_t MediumFabric::cross_posts() const {
  uint64_t total = 0;
  for (const ShardDrainStats& stats : stats_) {
    total += stats.cross_posts;
  }
  return total;
}

uint64_t MediumFabric::scheduled_wakeups() const {
  uint64_t total = 0;
  for (const ShardDrainStats& stats : stats_) {
    total += stats.scheduled;
  }
  return total;
}

uint64_t MediumFabric::skipped_wakeups() const {
  uint64_t total = 0;
  for (const ShardDrainStats& stats : stats_) {
    total += stats.skipped;
  }
  return total;
}

uint64_t MediumFabric::lanes_skipped() const {
  uint64_t total = 0;
  for (const ShardDrainStats& stats : stats_) {
    total += stats.lanes_skipped;
  }
  return total;
}

}  // namespace quanto
