#include "src/net/medium.h"

#include <algorithm>

namespace quanto {

Medium::Medium(EventQueue* queue) : queue_(queue) {}

void Medium::Register(MediumClient* client) {
  clients_.push_back(client);
  clients_by_channel_[client->Channel()].push_back(client);
}

void Medium::Unregister(MediumClient* client) {
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
  for (auto& [channel, clients] : clients_by_channel_) {
    clients.erase(std::remove(clients.begin(), clients.end(), client),
                  clients.end());
  }
}

std::vector<MediumClient*>& Medium::ChannelClients(int channel) {
  return clients_by_channel_[channel];
}

void Medium::AddInterference(InterferenceSource* source) {
  interference_.push_back(source);
}

size_t Medium::ActiveTransmissions(int channel) const {
  auto it = busy_count_.find(channel);
  return it != busy_count_.end() ? it->second : 0;
}

bool Medium::EnergyDetected(int channel) const {
  if (ActiveTransmissions(channel) > 0) {
    return true;
  }
  Tick now = queue_->Now();
  for (const InterferenceSource* source : interference_) {
    if (source->EnergyOn(channel, now)) {
      return true;
    }
  }
  return false;
}

bool Medium::BeginTransmit(node_id_t sender, int channel, const Packet& packet,
                           Tick airtime) {
  if (ActiveTransmissions(channel) > 0) {
    // Two simultaneous 802.15.4 frames on one channel: both are lost. The
    // CSMA layer above avoids this in practice; count it and drop.
    ++collisions_;
    return false;
  }
  ++busy_count_[channel];
  ++packets_sent_;
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() != sender && client->Listening()) {
      client->OnFrameStart(sender);
    }
  }
  Packet delivered = packet;
  queue_->ScheduleAfter(airtime, [this, channel, delivered] {
    CompleteTransmit(channel, delivered);
  });
  return true;
}

void Medium::CompleteTransmit(int channel, const Packet& packet) {
  auto it = busy_count_.find(channel);
  if (it != busy_count_.end() && it->second > 0) {
    --it->second;
  }
  for (MediumClient* client : ChannelClients(channel)) {
    if (client->NodeId() == packet.src || !client->Listening()) {
      continue;
    }
    if (packet.dst != kBroadcastAddr && packet.dst != client->NodeId()) {
      // Radios hear unicast frames for others too (address filtering
      // happens in the radio), so deliver and let the client filter.
    }
    client->OnFrameComplete(packet);
    ++packets_delivered_;
  }
}

}  // namespace quanto
